// Package harness runs one benchmark trial: a data structure × a
// reclamation policy × a workload × a thread count, following the
// methodology of the paper's §5.0.2 — prefill to half the key range,
// then a timed execution phase of randomly mixed operations — and
// collecting the metrics its figures plot: throughput, maximum
// retire-list length, peak resident (outstanding) nodes, and unreclaimed
// nodes at the end of the run.
//
// Mixes with a RangePct component additionally account range queries
// (ops, keys returned, throughput) and record every scan's latency into
// an HDR-style histogram (Result.ScanLat: p50/p90/p99/max per trial),
// the long-read tail metric the figures and popbench sweeps compare
// across policies. Range-bearing mixes require a structure implementing
// ds.RangeScanner — DSSkipList or DSABTree, whose scans stress
// reservations in opposite ways (per-node chains vs whole leaves); use
// RangeCapable to test by name.
//
// Worker "threads" are goroutines; sweeping the thread count past
// runtime.GOMAXPROCS reproduces the paper's oversubscription regime
// (§5.0.2 runs 1..288 threads on 144 hardware threads).
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pop/internal/core"
	"pop/internal/ds"
	"pop/internal/ds/abtree"
	"pop/internal/ds/extbst"
	"pop/internal/ds/hashtable"
	"pop/internal/ds/hmlist"
	"pop/internal/ds/lazylist"
	"pop/internal/ds/skiplist"
	"pop/internal/report"
	"pop/internal/workload"
)

// DS names accepted by Config.DS, matching the paper's abbreviations
// (plus the skiplist, which is this repository's extension).
const (
	DSHarrisMichaelList = "hml"  // Harris-Michael list
	DSLazyList          = "ll"   // lazy list
	DSHashTable         = "hmht" // hash table over HML buckets
	DSExternalBST       = "dgt"  // external BST (David-Guerraoui-Trigonakis)
	DSABTree            = "abt"  // (a,b)-tree
	DSSkipList          = "skl"  // lock-free skiplist (range queries)
)

// DSNames lists the supported data structures in the paper's order,
// then the extensions.
func DSNames() []string {
	return []string{DSExternalBST, DSHashTable, DSABTree, DSHarrisMichaelList, DSLazyList, DSSkipList}
}

// Config describes one trial.
type Config struct {
	DS       string        // data structure (DS* constants)
	Policy   core.Policy   // reclamation scheme
	Threads  int           // worker count
	Duration time.Duration // execution-phase length
	KeyRange int64         // keys drawn from [0, KeyRange)
	Mix      workload.Mix  // operation mixture
	Seed     uint64        // trial seed (reproducible)
	NoPrefil bool          // skip prefilling to KeyRange/2

	// RangeSpan is the width of RangeQuery scans (keys per scan;
	// default workload.DefaultRangeSpan). Only used when Mix.RangePct
	// is nonzero, which requires a DS implementing ds.RangeScanner.
	RangeSpan int64

	// Reclamation tuning (0 = paper defaults; see core.Options).
	ReclaimThreshold int
	EpochFreq        int
	CMult            int
	BatchSize        int

	// LongReads enables the §5.1.2 asymmetric workload: the first half of
	// the threads run contains-only over the whole key range; the second
	// half run 50/50 insert/delete over the lowest 5% of the range ("near
	// the head of the list").
	LongReads bool

	// Stall configures the robustness scenario: worker 0 periodically
	// holds an operation open for StallLength while remaining responsive
	// to pings (a thread busy with other work). Non-robust schemes stop
	// reclaiming for the stall's duration.
	StallEvery  time.Duration
	StallLength time.Duration

	// SamplePeriod is the memory-sampling interval (default 2ms).
	SamplePeriod time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Threads <= 0 {
		return c, fmt.Errorf("harness: Threads must be positive")
	}
	if c.KeyRange <= 1 {
		return c, fmt.Errorf("harness: KeyRange must exceed 1")
	}
	if c.Duration <= 0 {
		c.Duration = 100 * time.Millisecond
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.UpdateHeavy
	}
	// Validate the mix/key-range pair exactly the way workers will build
	// their generators, so a bad config surfaces as an error here instead
	// of a panic mid-sweep.
	if _, err := workload.NewGeneratorErr(1, c.Mix, c.KeyRange); err != nil {
		return c, fmt.Errorf("harness: %w", err)
	}
	if c.RangeSpan <= 0 {
		c.RangeSpan = workload.DefaultRangeSpan
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed_cafe
	}
	return c, nil
}

// Result is the outcome of one trial.
type Result struct {
	Config Config

	Ops        uint64  // operations completed in the execution phase
	ReadOps    uint64  // contains operations completed
	RangeOps   uint64  // range queries completed
	RangeKeys  uint64  // keys returned across all range queries
	Throughput float64 // Ops per second
	ReadTput   float64 // ReadOps per second (Fig. 4's metric)
	RangeTput  float64 // RangeOps per second

	MaxRetire    int   // max retire-list length across threads (paper's memory plots)
	PeakResident int64 // peak outstanding nodes (max resident memory analogue)
	Unreclaimed  int64 // retired-but-unfreed nodes at measurement end (pre-flush)
	LeakedAfter  int64 // unreclaimed after a quiescent flush (0 except NR)

	// ScanLat holds every range scan's wall-clock latency (ns), merged
	// across workers — the long-read tail metric (p50/p99) per policy.
	// Nil when the mix has no RangePct component.
	ScanLat *report.Histogram

	Reclaim core.Stats // aggregated reclamation counters
}

// memSet is a Set that can report pool occupancy.
type memSet interface {
	ds.Set
	Outstanding() int64
}

// build instantiates the data structure named in cfg.
func build(cfg Config, d *core.Domain) (memSet, error) {
	switch cfg.DS {
	case DSHarrisMichaelList:
		return hmlist.New(d), nil
	case DSLazyList:
		return lazylist.New(d), nil
	case DSHashTable:
		return hashtable.New(d, cfg.KeyRange, 6), nil
	case DSExternalBST:
		return extbst.New(d), nil
	case DSABTree:
		return abtree.New(d), nil
	case DSSkipList:
		return skiplist.New(d), nil
	default:
		return nil, fmt.Errorf("harness: unknown data structure %q", cfg.DS)
	}
}

// RangeCapable reports whether the named data structure supports range
// queries (implements ds.RangeScanner) and may therefore run mixes with
// a RangePct component. It answers by building a throwaway instance, so
// it stays in sync with build automatically.
func RangeCapable(name string) bool {
	s, err := build(Config{DS: name, KeyRange: 2}, core.NewDomain(core.NR, 1, nil))
	if err != nil {
		return false
	}
	_, ok := s.(ds.RangeScanner)
	return ok
}

// workerRole resolves worker id's operation mix and key range. Under
// LongReads (§5.1.2) the first half of the workers run contains-only
// over the whole range and the second half run update-heavy over the
// lowest 5% ("near the head of the list"); otherwise every worker runs
// the configured mix.
func workerRole(cfg Config, id int) (workload.Mix, int64) {
	if !cfg.LongReads {
		return cfg.Mix, cfg.KeyRange
	}
	if id < cfg.Threads/2 || cfg.Threads == 1 {
		return workload.Mix{ContainsPct: 100}, cfg.KeyRange
	}
	keyRange := cfg.KeyRange / 20
	if keyRange < 2 {
		keyRange = 2
	}
	return workload.UpdateHeavy, keyRange
}

// Run executes one trial.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	d := core.NewDomain(cfg.Policy, cfg.Threads, &core.Options{
		ReclaimThreshold: cfg.ReclaimThreshold,
		EpochFreq:        cfg.EpochFreq,
		CMult:            cfg.CMult,
		BatchSize:        cfg.BatchSize,
	})
	set, err := build(cfg, d)
	if err != nil {
		return Result{}, err
	}
	if cfg.Mix.RangePct > 0 {
		if _, ok := set.(ds.RangeScanner); !ok {
			return Result{}, fmt.Errorf("harness: mix has RangePct=%d but %q does not support range queries", cfg.Mix.RangePct, cfg.DS)
		}
	}
	threads := make([]*core.Thread, cfg.Threads)
	for i := range threads {
		threads[i] = d.RegisterThread()
	}

	// Per-worker generators go through the error-returning constructor
	// up front: a bad role-derived mix surfaces here as an error instead
	// of panicking inside a worker goroutine mid-sweep.
	gens := make([]*workload.Generator, cfg.Threads)
	for i := range gens {
		mix, keyRange := workerRole(cfg, i)
		gen, err := workload.NewGeneratorErr(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1, mix, keyRange)
		if err != nil {
			return Result{}, fmt.Errorf("harness: worker %d: %w", i, err)
		}
		gen.SetRangeSpan(cfg.RangeSpan)
		gens[i] = gen
	}

	// Scan-latency histograms, one per worker (single-writer, merged at
	// the end): only range-bearing mixes pay the two clock reads.
	var scanLats []*report.Histogram
	if cfg.Mix.RangePct > 0 {
		scanLats = make([]*report.Histogram, cfg.Threads)
		for i := range scanLats {
			scanLats[i] = new(report.Histogram)
		}
	}

	if !cfg.NoPrefil {
		if err := prefill(cfg, set, threads); err != nil {
			return Result{}, err
		}
	}

	var (
		stop      atomic.Bool
		release   = make(chan struct{})
		flushGo   = make(chan struct{})
		loopsDone sync.WaitGroup // workers out of their op loops (quiescent)
		finished  sync.WaitGroup // workers fully done (flushed)
		opsBy     = make([]uint64, cfg.Threads)
		readsBy   = make([]uint64, cfg.Threads)
		rangesBy  = make([]uint64, cfg.Threads)
		rkeysBy   = make([]uint64, cfg.Threads)
	)
	for i := 0; i < cfg.Threads; i++ {
		loopsDone.Add(1)
		finished.Add(1)
		go func(id int) {
			defer finished.Done()
			th := threads[id]
			var hist *report.Histogram
			if scanLats != nil {
				hist = scanLats[id]
			}
			<-release
			runWorker(cfg, set, th, gens[id], id, &stop, &counters{
				ops: &opsBy[id], reads: &readsBy[id],
				ranges: &rangesBy[id], rangeKeys: &rkeysBy[id],
				scanLat: hist,
			})
			loopsDone.Done()
			// Park quiescent until everyone stopped, then flush from the
			// owner goroutine (Thread handles are not transferable).
			<-flushGo
			th.Flush()
		}(i)
	}

	// Memory sampler: tracks peak outstanding nodes during execution.
	var peak atomic.Int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			if v := set.Outstanding(); v > peak.Load() {
				peak.Store(v)
			}
			time.Sleep(cfg.SamplePeriod)
		}
	}()

	close(release)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	loopsDone.Wait() // every worker is quiescent now
	<-samplerDone

	// End-of-run memory state, before any flush reclaims the backlog.
	if v := set.Outstanding(); v > peak.Load() {
		peak.Store(v)
	}
	unreclaimed := d.Unreclaimed()

	close(flushGo)
	finished.Wait()

	var totalOps, totalReads, totalRanges, totalRKeys uint64
	for i := range opsBy {
		totalOps += opsBy[i]
		totalReads += readsBy[i]
		totalRanges += rangesBy[i]
		totalRKeys += rkeysBy[i]
	}
	res := Result{
		Config:       cfg,
		Ops:          totalOps,
		ReadOps:      totalReads,
		RangeOps:     totalRanges,
		RangeKeys:    totalRKeys,
		Throughput:   float64(totalOps) / cfg.Duration.Seconds(),
		ReadTput:     float64(totalReads) / cfg.Duration.Seconds(),
		RangeTput:    float64(totalRanges) / cfg.Duration.Seconds(),
		PeakResident: peak.Load(),
		Unreclaimed:  unreclaimed,
		LeakedAfter:  d.Unreclaimed(),
		Reclaim:      d.Stats(),
	}
	res.MaxRetire = res.Reclaim.MaxRetire
	if scanLats != nil {
		agg := new(report.Histogram)
		for _, h := range scanLats {
			agg.Merge(h)
		}
		res.ScanLat = agg
	}
	return res, nil
}

// counters receives one worker's operation tallies. scanLat is nil when
// the mix has no range component.
type counters struct {
	ops, reads, ranges, rangeKeys *uint64
	scanLat                       *report.Histogram
}

// runWorker is one worker thread's execution phase. gen is the worker's
// private generator (already role-resolved, see workerRole).
func runWorker(cfg Config, set ds.Set, th *core.Thread, gen *workload.Generator, id int, stop *atomic.Bool, c *counters) {
	scanner, _ := set.(ds.RangeScanner) // non-nil whenever mix.RangePct > 0

	staller := cfg.StallEvery > 0 && cfg.StallLength > 0 && id == 0
	nextStall := time.Now().Add(cfg.StallEvery)

	n, r, rq, rk := uint64(0), uint64(0), uint64(0), uint64(0)
	for !stop.Load() {
		if staller && time.Now().After(nextStall) {
			// Busy delay inside an operation: the thread pins its epoch /
			// read position but keeps answering pings, exactly the
			// "delayed but running" scenario EpochPOP is built for.
			th.StartOp()
			end := time.Now().Add(cfg.StallLength)
			for time.Now().Before(end) && !stop.Load() {
				th.Poll()
			}
			th.EndOp()
			nextStall = time.Now().Add(cfg.StallEvery)
		}
		op, key := gen.Next()
		switch op {
		case workload.Contains:
			set.Contains(th, key)
			r++
		case workload.Insert:
			set.Insert(th, key)
		case workload.Delete:
			set.Delete(th, key)
		default: // workload.RangeQuery
			start := time.Now()
			rk += uint64(scanner.RangeCount(th, key, key+gen.RangeSpan()-1))
			if c.scanLat != nil {
				c.scanLat.Record(time.Since(start).Nanoseconds())
			}
			rq++
		}
		n++
	}
	*c.ops, *c.reads, *c.ranges, *c.rangeKeys = n, r, rq, rk
}

// prefill inserts until the structure holds about KeyRange/2 keys
// (§5.0.2), splitting the work across all threads. Runs on the worker
// threads'"own" goroutines to respect handle ownership.
func prefill(cfg Config, set ds.Set, threads []*core.Thread) error {
	target := cfg.KeyRange / 2
	per := target / int64(len(threads))
	extra := target - per*int64(len(threads))
	var wg sync.WaitGroup
	for i, th := range threads {
		quota := per
		if i == 0 {
			quota += extra
		}
		gen, err := workload.NewGeneratorErr(cfg.Seed^0xfeed+uint64(i), workload.UpdateHeavy, cfg.KeyRange)
		if err != nil {
			return fmt.Errorf("harness: prefill: %w", err)
		}
		wg.Add(1)
		go func(th *core.Thread, gen *workload.Generator, quota int64) {
			defer wg.Done()
			done := int64(0)
			attempts := int64(0)
			for done < quota {
				if set.Insert(th, gen.Key()) {
					done++
				}
				attempts++
				if attempts > 50*quota+1000 {
					// The range is saturated (heavily duplicated draws);
					// good enough for a prefill.
					return
				}
			}
		}(th, gen, quota)
	}
	wg.Wait()
	return nil
}
