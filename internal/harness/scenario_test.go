package harness

import (
	"strings"
	"testing"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/workload"
)

// TestYCSBWorkloadsEndToEnd runs each of the six YCSB mixes through
// RunStore and checks the trial exercised the classes the mix names,
// with zero value-plane errors.
func TestYCSBWorkloadsEndToEnd(t *testing.T) {
	for _, w := range workload.YCSBWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := RunStore(StoreConfig{
				Policy:   core.EBR,
				Threads:  2,
				Duration: 40 * time.Millisecond,
				Keys:     4096,
				Shards:   4,
				Mix:      w.Mix,
				Dist:     w.Dist,
				Seed:     uint64(w.Name[0]),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no ops completed")
			}
			iv := chaos.Invariants{Policy: core.EBR}
			for _, v := range iv.CheckValueErrors(res.ValueErrors) {
				t.Errorf("%s", v)
			}
			for _, v := range iv.CheckLeaked(res.LeakedAfter) {
				t.Errorf("%s", v)
			}
			// Each named class must actually have been drawn.
			for c := StoreOpClass(0); c < NumStoreOpClasses; c++ {
				if c.MixShare(w.Mix) > 0 && res.OpCounts[c] == 0 {
					t.Errorf("class %v has %d%% share but 0 ops", c, c.MixShare(w.Mix))
				}
				if c.MixShare(w.Mix) == 0 && res.OpCounts[c] != 0 {
					t.Errorf("class %v has no share but %d ops", c, res.OpCounts[c])
				}
			}
		})
	}
}

// TestYCSBMixSharesObserved: the trial-level frequency check for the
// two workloads with split mixes (A's 50/50 and F's rmw half).
func TestYCSBMixSharesObserved(t *testing.T) {
	f, err := workload.ParseYCSB("F")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStore(StoreConfig{
		Policy: core.EpochPOP, Threads: 2, Duration: 60 * time.Millisecond,
		Keys: 4096, Mix: f.Mix, Dist: f.Dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	rmwFrac := float64(res.OpCounts[SOpRMW]) / float64(res.Ops)
	if rmwFrac < 0.4 || rmwFrac > 0.6 {
		t.Errorf("workload F rmw fraction %.3f, want ~0.5", rmwFrac)
	}
}

const harnessTrace = `# determinism fixture
put,alpha,32,0
put,beta,64,10
get,alpha,0,20
rmw,beta,48,30
scan,alpha,8,40
get,beta,0,50
delete,alpha,0,60
get,alpha,0,70
put,gamma,0,80
get,gamma,0,90
`

// traceConfig returns a fixed replay config over the fixture repeated
// enough to keep every worker busy.
func traceConfig(threads int) (StoreConfig, int) {
	ops, err := workload.ParseTrace(strings.NewReader(strings.Repeat(harnessTrace, 50)))
	if err != nil {
		panic(err)
	}
	return StoreConfig{
		Policy:    core.EBR,
		Threads:   threads,
		Keys:      1024,
		Shards:    2,
		Seed:      7,
		Trace:     ops,
		OpLatency: true,
	}, len(ops)
}

// TestTraceReplayDeterminism: same trace + seed ⇒ identical op counts
// across runs, and every op in the trace executes exactly once.
func TestTraceReplayDeterminism(t *testing.T) {
	for _, threads := range []int{1, 3} {
		cfg, total := traceConfig(threads)
		a, err := RunStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunStore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Ops != uint64(total) || b.Ops != uint64(total) {
			t.Fatalf("threads=%d: ops %d / %d, want exactly %d (trace drained once)", threads, a.Ops, b.Ops, total)
		}
		if a.OpCounts != b.OpCounts {
			t.Errorf("threads=%d: op counts diverged across identical replays:\n%v\n%v", threads, a.OpCounts, b.OpCounts)
		}
		if a.ValueErrors != 0 || b.ValueErrors != 0 {
			t.Errorf("threads=%d: value errors %d / %d", threads, a.ValueErrors, b.ValueErrors)
		}
		// Single-threaded replay is fully sequential: served-key counts
		// must match too (multi-worker interleaving may not).
		if threads == 1 && a.ServedKeys != b.ServedKeys {
			t.Errorf("sequential replays served %d vs %d keys", a.ServedKeys, b.ServedKeys)
		}
	}
}

// TestTraceReplayValidation: churn is incompatible, and scans in a
// trace demand an ordered backing.
func TestTraceReplayValidation(t *testing.T) {
	cfg, _ := traceConfig(1)
	cfg.Churn = workload.Churn{AfterOps: 100}
	if _, err := RunStore(cfg); err == nil {
		t.Error("trace+churn accepted")
	}
	cfg, _ = traceConfig(1)
	cfg.Backing = "hmht"
	if _, err := RunStore(cfg); err == nil {
		t.Error("trace with scans accepted on unordered backing")
	}
}

// TestTracePacedReplay: paced replay takes at least the trace's span.
func TestTracePacedReplay(t *testing.T) {
	ops, err := workload.ParseTrace(strings.NewReader(
		"put,a,16,0\nget,a,0,20000\nget,a,0,40000\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStore(StoreConfig{
		Policy: core.EBR, Threads: 1, Keys: 64, Trace: ops, TracePaced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 40*time.Millisecond {
		t.Errorf("paced replay of a 40ms trace finished in %v", res.Elapsed)
	}
}

// TestServeChaosTrial: the injector bundle against a live serving
// front — wire clients and in-process injectors share the store, and
// the run must still verify end to end (RunServe itself errors on
// leaked leases after shutdown).
func TestServeChaosTrial(t *testing.T) {
	res, err := RunServe(ServeConfig{
		Policy:   core.EpochPOP,
		Slots:    2,
		Conns:    4,
		Duration: 60 * time.Millisecond,
		Keys:     1024,
		Seed:     3,
		Chaos: chaos.Config{
			Stalls: 1, StallHold: 500 * time.Microsecond,
			GCPressure: true, GCEvery: 2 * time.Millisecond,
			Churners: 1, ChurnOps: 64,
			Hotspot: true, FlipEvery: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Error("no client ops completed under chaos")
	}
	if res.Chaos.Stalls == 0 || res.Chaos.GCCycles == 0 ||
		res.Chaos.Leases == 0 || res.Chaos.Flips == 0 {
		t.Errorf("idle injectors: %+v", res.Chaos)
	}
	iv := chaos.Invariants{Policy: core.EpochPOP}
	for _, v := range iv.CheckValueErrors(res.ValueErrors) {
		t.Errorf("invariant violated: %s", v)
	}
}

// TestStoreChaosTrial: RunStore with the injector bundle — every
// injector must report activity and every invariant must hold.
func TestStoreChaosTrial(t *testing.T) {
	for _, p := range []core.Policy{core.EBR, core.HazardPtrPOP, core.NBR} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			res, err := RunStore(StoreConfig{
				Policy:   p,
				Threads:  2,
				Duration: 60 * time.Millisecond,
				Keys:     2048,
				Shards:   4,
				Seed:     11,
				Chaos: chaos.Config{
					Stalls: 1, StallHold: 500 * time.Microsecond,
					GCPressure: true, GCEvery: 2 * time.Millisecond,
					Churners: 1, ChurnOps: 64,
					Hotspot: true, FlipEvery: time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Chaos.Stalls == 0 || res.Chaos.GCCycles == 0 ||
				res.Chaos.Leases == 0 || res.Chaos.Flips == 0 {
				t.Errorf("idle injectors: %+v", res.Chaos)
			}
			iv := chaos.Invariants{Policy: p}
			var vs []chaos.Violation
			vs = append(vs, iv.CheckValueErrors(res.ValueErrors)...)
			vs = append(vs, iv.CheckLeaked(res.LeakedAfter)...)
			vs = append(vs, iv.CheckCounters(res.Reclaim)...)
			// The trial's own 2 workers still hold their handles at
			// snapshot time; the injectors must have released theirs.
			vs = append(vs, iv.CheckLifecycle(res.Lifecycle, 2)...)
			for _, v := range vs {
				t.Errorf("invariant violated: %s", v)
			}
		})
	}
}
