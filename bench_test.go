// Benchmarks regenerating every figure in the paper's evaluation
// (Figures 1-11 plus the read-cost analysis, robustness scenario and
// ablations — see DESIGN.md's per-experiment index), together with
// microbenchmarks of the read and update paths per reclamation scheme.
//
// The figure benches run the same sweep definitions cmd/popbench uses,
// at a reduced default scale so `go test -bench=.` finishes on a laptop;
// they report the paper's headline comparisons as custom metrics:
//
//	pop:ops/s   HazardPtrPOP throughput at the largest swept thread count
//	pop/hp:x    HazardPtrPOP speedup over classic HP (paper: 1.2x-4x)
//	epop/ebr:x  EpochPOP relative to EBR (paper: ~1x)
//
// Use cmd/popbench for full-size runs and complete series output.
package pop_test

import (
	"testing"
	"time"

	"pop"
	"pop/internal/figures"
	"pop/internal/report"
)

// benchCtx is the reduced-scale sweep context used by the figure benches.
func benchCtx() figures.Ctx {
	return figures.Ctx{
		Duration: 40 * time.Millisecond,
		Threads:  []int{2},
		Scale:    512,
		Seed:     7,
	}
}

// colValue extracts the last-row value of the named column from the
// first series, or -1 if absent.
func colValue(series []report.Series, col string) float64 {
	if len(series) == 0 || len(series[0].Rows) == 0 {
		return -1
	}
	s := series[0]
	last := s.Rows[len(s.Rows)-1]
	for i, n := range s.Names {
		if n == col {
			return last.Cells[i]
		}
	}
	return -1
}

// benchFigure runs one figure per iteration and reports the headline
// ratios as custom metrics.
func benchFigure(b *testing.B, id string) {
	f, ok := figures.Get(id)
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	ctx := benchCtx()
	var series []report.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = f.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	if v := colValue(series, "HazardPtrPOP"); v > 0 {
		b.ReportMetric(v, "pop:ops/s")
		if hp := colValue(series, "HP"); hp > 0 {
			b.ReportMetric(v/hp, "pop/hp:x")
		}
	}
	if e := colValue(series, "EpochPOP"); e > 0 {
		if ebr := colValue(series, "EBR"); ebr > 0 {
			b.ReportMetric(e/ebr, "epop/ebr:x")
		}
	}
}

// --- Figures 1-2: update-heavy throughput + retire-list memory ---

func BenchmarkFig1aDGTUpdateHeavy(b *testing.B)  { benchFigure(b, "fig1a") }
func BenchmarkFig1bHMHTUpdateHeavy(b *testing.B) { benchFigure(b, "fig1b") }
func BenchmarkFig1cABTUpdateHeavy(b *testing.B)  { benchFigure(b, "fig1c") }
func BenchmarkFig2aHMLUpdateHeavy(b *testing.B)  { benchFigure(b, "fig2a") }
func BenchmarkFig2bLLUpdateHeavy(b *testing.B)   { benchFigure(b, "fig2b") }

// --- Figure 3: read-heavy throughput ---

func BenchmarkFig3aABTReadHeavy(b *testing.B) { benchFigure(b, "fig3a") }
func BenchmarkFig3bDGTReadHeavy(b *testing.B) { benchFigure(b, "fig3b") }

// --- Figure 4: long-running reads (both panels in one sweep) ---

func BenchmarkFig4LongReads(b *testing.B) { benchFigure(b, "fig4") }

// --- Appendix D: Figures 5-9 ---

func BenchmarkFig5ABTAppendix(b *testing.B) { benchFigure(b, "fig5") }
func BenchmarkFig6DGTAppendix(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFig7HTAppendix(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8HMLAppendix(b *testing.B) { benchFigure(b, "fig8") }
func BenchmarkFig9LLAppendix(b *testing.B)  { benchFigure(b, "fig9") }

// --- Appendix E: Figures 10-11 (with Crystalline-lite) ---

func BenchmarkFig10HMLCrystalline(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11HTCrystalline(b *testing.B)  { benchFigure(b, "fig11") }

// --- Skiplist extension figures: update churn and scan-heavy ranges ---

func BenchmarkSklUpdateHeavy(b *testing.B) { benchFigure(b, "skl-update") }
func BenchmarkSklScanHeavy(b *testing.B)   { benchFigure(b, "skl-scan") }
func BenchmarkStoreServe(b *testing.B)     { benchFigure(b, "store-serve") }
func BenchmarkNBROverwrite(b *testing.B)   { benchFigure(b, "nbr-overwrite") }

// --- §2.1.2 read-cost analysis and §5.1 robustness ---

func BenchmarkReadPathCostFigure(b *testing.B) { benchFigure(b, "readcost") }
func BenchmarkRobustnessStall(b *testing.B)    { benchFigure(b, "stall") }

// --- Ablations ---

func BenchmarkAblationThreshold(b *testing.B) { benchFigure(b, "ablate-threshold") }
func BenchmarkAblationEpochFreq(b *testing.B) { benchFigure(b, "ablate-epochfreq") }
func BenchmarkAblationCMult(b *testing.B)     { benchFigure(b, "ablate-c") }

// --- Microbenchmarks: per-scheme read and update path cost ---

// BenchmarkContains measures one membership test on a 512-key
// Harris-Michael list: the pure read-path cost per policy (ns/op here is
// the per-operation analogue of the paper's §2.1.2 perf analysis).
func BenchmarkContains(b *testing.B) {
	for _, p := range pop.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			d := pop.NewDomain(p, 1, nil)
			set := pop.NewHarrisMichaelList(d)
			t := d.RegisterThread()
			for k := int64(511); k >= 0; k-- {
				set.Insert(t, 2*k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set.Contains(t, int64(i%1024))
			}
		})
	}
}

// BenchmarkInsertDelete measures an insert+delete pair on the hash table
// (short traversals: reclamation bookkeeping dominates).
func BenchmarkInsertDelete(b *testing.B) {
	for _, p := range pop.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			d := pop.NewDomain(p, 1, &pop.Options{ReclaimThreshold: 2048})
			set := pop.NewHashTable(d, 4096, 6)
			t := d.RegisterThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i % 4096)
				set.Insert(t, k)
				set.Delete(t, k)
			}
		})
	}
}

// BenchmarkSkipListRangeScan measures one span-100 ordered scan over a
// 16K-key skiplist per policy: the per-hop reservation cost of each
// scheme multiplied across a long traversal (the regime where POP's
// cheap publication matters most).
func BenchmarkSkipListRangeScan(b *testing.B) {
	for _, p := range pop.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			d := pop.NewDomain(p, 1, nil)
			set := pop.NewSkipList(d)
			t := d.RegisterThread()
			for k := int64(0); k < 16384; k += 2 {
				set.Insert(t, k)
			}
			buf := make([]int64, 0, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64((i * 2654435761) % 16384)
				buf = set.RangeCollect(t, lo, lo+99, buf)
			}
		})
	}
}

// BenchmarkABTreeRangeScan measures the same span-100 ordered scan on
// the (a,b)-tree: the opposite reservation shape (a handful of
// whole-leaf protections per scan instead of one reservation per node
// hopped), so the pair of benchmarks separates reservation count from
// reservation lifetime per policy.
func BenchmarkABTreeRangeScan(b *testing.B) {
	for _, p := range pop.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			d := pop.NewDomain(p, 1, nil)
			set := pop.NewABTree(d)
			t := d.RegisterThread()
			for k := int64(0); k < 16384; k += 2 {
				set.Insert(t, k)
			}
			buf := make([]int64, 0, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64((i * 2654435761) % 16384)
				buf = set.RangeCollect(t, lo, lo+99, buf)
			}
		})
	}
}

// BenchmarkABTreeMixed measures the (a,b)-tree under a 90/5/5 mix (the
// paper's read-heavy regime) per policy.
func BenchmarkABTreeMixed(b *testing.B) {
	for _, p := range pop.Policies() {
		b.Run(p.String(), func(b *testing.B) {
			d := pop.NewDomain(p, 1, &pop.Options{ReclaimThreshold: 2048})
			set := pop.NewABTree(d)
			t := d.RegisterThread()
			for k := int64(0); k < 8192; k += 2 {
				set.Insert(t, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64((i * 2654435761) % 8192)
				switch i % 20 {
				case 0:
					set.Insert(t, k)
				case 1:
					set.Delete(t, k)
				default:
					set.Contains(t, k)
				}
			}
		})
	}
}
