// Command popbench regenerates the paper's figures and runs ad-hoc
// sweeps. Each figure id maps to one experiment from the evaluation
// section (see DESIGN.md's per-experiment index); the output is the same
// series the paper plots, as an aligned table (default), TSV (-tsv) or
// CSV (-csv).
//
// With -ds, popbench instead runs a direct sweep of one data structure
// across policies and thread counts; -rangepct carves range queries out
// of the mix's contains share (requires a range-capable structure: -ds
// skl or -ds abt) and -rangespan sets the scan width. For range-capable
// structures -rangepct defaults to 10 (pass -rangepct 0 to disable);
// whenever the running mix contains scans, the sweep reports per-scan
// latency quantiles (p50/p90/p99/max, from an HDR histogram merged
// across workers) for every policy alongside throughput and memory.
//
// Direct sweeps run with per-operation latency profiling on: every
// policy's table includes p50/p99 per op class (get, put, overwrite,
// delete), plus value-checksum failures (which must be 0 — a nonzero
// count means a stale value was served). The kv mix (70% get / 10% put /
// 15% overwrite / 5% delete) is the KV-serving workload; its overwrite
// share retires a node per hit on the replace-node structures.
//
// With -store, popbench sweeps the KV-serving front (internal/store)
// instead: shard counts × policies × multi-get batch sizes under the
// serving mix (get/put/mget/scan/delete over string keys), reporting
// throughput, per-class latency tails and the stale-value-read count —
// how often a value read lost to an overwrite's reclamation — per
// policy. -dist zipf switches key popularity to scrambled Zipfian
// (s=0.99) in both store sweeps and -ds direct sweeps. -valsize picks
// the payload-size distribution (fixed:N, uniform:MIN,MAX or
// mixed:PCT,SMALL,LARGE); payloads of at most 7 bytes inline-encode
// into the map word instead of taking an arena slot, and every store
// and -ds sweep reports allocs/op and alloc bytes/op (whole-process
// MemStats deltas over the measured phase) so the allocation cost of a
// configuration is a first-class column.
//
// With -ycsb A..F, store and serve sweeps run the named YCSB core
// workload instead of the default mix: A (50/50 read/update, zipf),
// B (95/5, zipf), C (read-only, zipf), D (95/5 read/insert, latest),
// E (95/5 scan/insert, zipf), F (50/50 read/rmw, zipf). The serve path
// supports A–D (the wire protocol has no scan or rmw command); E needs
// an ordered -backing.
//
// With -trace FILE, the store path replays a recorded trace instead of
// drawing from a synthetic mix. Traces are text lines of
// `op,key,size,offset_us` (op: get, put/set, delete/del, scan, rmw;
// `#` comments and blank lines ignored). The trace drains exactly once
// per trial across all workers; -tracepaced honors the recorded
// offsets as an open-loop arrival schedule instead of replaying
// flat-out.
//
// With -chaos, sweeps run under the standard fault-injector bundle
// (internal/chaos): stalled readers holding protected operations
// across reclamation windows, forced-GC pressure, thread-lease churn,
// and a shard-hotspot flipper — with injector activity reported as
// extra columns. Chaos perturbs schedules only; every injector write
// is checksum-valid, so the value-checksum column must stay zero.
//
// With -churn N, sweeps run in the elastic mode: every worker releases
// its thread handle after N operations (donating its unreclaimed
// retire list to the domain's orphan queue) and respawns as a fresh
// goroutine re-leasing a slot. Churned sweeps add the lifecycle
// columns — thread releases and orphan nodes adopted — so reclamation
// tails under thread turnover are explainable; the `churn` figure runs
// the canonical turnover sweep.
//
// Examples:
//
//	popbench -list
//	popbench -figure fig2a -duration 2s -threads 1,2,4,8,16
//	popbench -figure all -scale 128 -duration 500ms -tsv > results.tsv
//	popbench -figure fig4 -policies NR,EBR,NBR,HazardPtrPOP,EpochPOP
//	popbench -ds skl -rangepct 10 -rangespan 200
//	popbench -ds abt -csv > abt-scan-latency.csv
//	popbench -ds abt -mix scan-heavy -keyrange 100000
//	popbench -ds skl -mix kv -duration 1s -csv > skl-kv.csv
//	popbench -ds hmht -mix kv -keyrange 1000000 -dist zipf
//	popbench -ds skl -mix kv -churn 5000
//	popbench -figure churn -duration 1s
//	popbench -store -shards 1,4,16 -batch 8,64 -dist zipf
//	popbench -store -churn 2000 -shards 8
//	popbench -store -backing hmht -keyrange 1000000 -csv > store.csv
//	popbench -store -valsize mixed:80,6,256 -ycsb B
//	popbench -ycsb B -threads 8
//	popbench -ycsb D -serve -conns 32
//	popbench -trace ops.trace -tracepaced
//	popbench -ycsb A -chaos
//	popbench -figure ycsb -duration 1s
//
// The -scale flag divides the paper's structure sizes (defaults to 64 so
// a laptop run finishes); -scale 1 runs the full-size structures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/figures"
	"pop/internal/harness"
	"pop/internal/report"
	"pop/internal/store"
	"pop/internal/telemetry"
	"pop/internal/workload"
)

func main() {
	var (
		figureID = flag.String("figure", "", "figure id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available figures and exit")
		duration = flag.Duration("duration", 300*time.Millisecond, "execution time per trial")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
		scale    = flag.Int64("scale", 64, "divide the paper's structure sizes by this factor")
		seed     = flag.Uint64("seed", 42, "trial seed")
		policies = flag.String("policies", "", "comma-separated policy subset (default: the paper's set)")
		tsv      = flag.Bool("tsv", false, "emit TSV instead of aligned tables")
		csv      = flag.Bool("csv", false, "emit CSV (full precision) instead of aligned tables")
		quiet    = flag.Bool("quiet", false, "suppress progress messages")

		dsName    = flag.String("ds", "", "direct sweep of one data structure (hml, ll, hmht, dgt, abt, skl) instead of a figure")
		mixName   = flag.String("mix", "read-heavy", "direct sweep mix: read-heavy, update-heavy, scan-heavy or kv")
		rangePct  = flag.Int("rangepct", -1, "percent of operations that are range queries, taken from the mix's contains share (-1 = auto: 10 for range-capable structures, 0 otherwise)")
		rangeSpan = flag.Int64("rangespan", workload.DefaultRangeSpan, "keys per range query")
		keyRange  = flag.Int64("keyrange", 16384, "direct sweep / store key population")
		distName  = flag.String("dist", "uniform", "key-popularity distribution: uniform, zipf (s=0.99) or latest (popularity follows the insert frontier)")
		churnOps  = flag.Uint64("churn", 0, "elastic mode: operations per worker incarnation before it releases its thread handle and respawns (0 = no churn); applies to -ds and -store sweeps")
		rthresh   = flag.Int("rthresh", 0, "retire-list length that triggers a reclamation pass (0 = the paper's 24576); lower it to observe per-pass ping/scan fan-out in short runs; applies to -ds and -store sweeps")

		ycsbName   = flag.String("ycsb", "", "YCSB core workload (A..F): run the store sweep (or, with -serve, the serving front) under the named mix and key distribution")
		traceFile  = flag.String("trace", "", "replay a recorded op trace (op,key,size,offset_us lines) through the store instead of a synthetic mix")
		tracePaced = flag.Bool("tracepaced", false, "honor the trace's recorded offsets as an open-loop arrival schedule (default: replay flat-out)")
		chaosOn    = flag.Bool("chaos", false, "run the standard fault-injector bundle (stalled readers, GC pressure, lease churn, shard hotspot) alongside store and serve sweeps")
		chaosFrom  = flag.Duration("chaosstart", 0, "with -chaos on -store: delay injector start this long into the measured run (a chaos burst instead of whole-run chaos)")
		chaosTo    = flag.Duration("chaosstop", 0, "with -chaos on -store: stop injectors this long into the run (0 = at run end)")
		sampleDur  = flag.Duration("sample", 0, "store sweep: record an interval-sampled telemetry timeline per cell at this resolution and print it after the tables (0 = off); with -json the samples embed in each record")

		storeMode = flag.Bool("store", false, "store sweep: the sharded string-key KV front across shards × policies × batch sizes")
		backing   = flag.String("backing", "skl", "store backing structure (skl, hmht, hml, abt, ll, dgt)")
		valSize   = flag.String("valsize", "", "store sweep payload-size distribution: fixed:N, uniform:MIN,MAX or mixed:PCT,SMALL,LARGE (PCT%% of puts are SMALL bytes, the rest LARGE); sizes <= 7 take the store's inline-value path")
		shardsCSV = flag.String("shards", "8", "store sweep: comma-separated shard counts")
		batchCSV  = flag.String("batch", "16", "store sweep: comma-separated multi-get/multi-put batch sizes")
		groupsCSV = flag.String("groups", "1", "store sweep: comma-separated reclamation-domain member counts the shards split across (powers of two, capped at the shard count)")
		mputPct   = flag.Int("mputpct", 0, "store sweep: percent of ops that are batched multi-puts (PutBatch), carved from the mix's put share")
		jsonOut   = flag.String("json", "", "also append one JSON record per sweep cell (JSON lines) to this file — -store, -ds and -serve sweeps all emit (CI's BENCH_store.json / BENCH_ds.json / BENCH_serve.json trajectories)")

		serveMode = flag.Bool("serve", false, "serve sweep: live TCP memcached-text server across connection counts × policies")
		connsCSV  = flag.String("conns", "8,32", "serve sweep: comma-separated client connection counts")
		slots     = flag.Int("slots", 8, "serve sweep: admission slots (connections executing at once)")
		window    = flag.Duration("window", 50*time.Microsecond, "serve sweep: get-coalescing window")
		openRate  = flag.Float64("openrate", 0, "serve sweep: open-loop total ops/s target (0 = closed loop)")
		getPct    = flag.Int("getpct", 90, "serve sweep: get share of the op mix (rest are sets)")
	)
	flag.Parse()

	render := func(s *report.Series) error { return s.WriteTable(os.Stdout) }
	switch {
	case *csv:
		render = func(s *report.Series) error { return s.WriteCSV(os.Stdout) }
	case *tsv:
		render = func(s *report.Series) error { return s.WriteTSV(os.Stdout) }
	}

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-18s %s\n", f.ID, f.Desc)
		}
		return
	}
	dist, err := workload.ParseDist(*distName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
		os.Exit(2)
	}
	if *ycsbName != "" && *dsName != "" {
		fmt.Fprintln(os.Stderr, "popbench: -ycsb applies to the -store and -serve paths, not -ds")
		os.Exit(2)
	}
	if *traceFile != "" && (*serveMode || *dsName != "") {
		fmt.Fprintln(os.Stderr, "popbench: -trace replays through the store path only")
		os.Exit(2)
	}
	if *traceFile != "" && *ycsbName != "" {
		fmt.Fprintln(os.Stderr, "popbench: -trace and -ycsb are mutually exclusive (a trace is the workload)")
		os.Exit(2)
	}
	var trace []workload.TraceOp
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(2)
		}
		trace, err = workload.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(2)
		}
	}
	// -ycsb and -trace imply the store sweep unless -serve picked the
	// wire-protocol front.
	if (*ycsbName != "" || *traceFile != "") && !*serveMode {
		*storeMode = true
	}
	var chaosCfg chaos.Config
	if *chaosOn {
		if !*storeMode && !*serveMode {
			fmt.Fprintln(os.Stderr, "popbench: -chaos applies to the -store and -serve paths")
			os.Exit(2)
		}
		chaosCfg = chaos.Default()
	}
	if (*chaosFrom > 0 || *chaosTo > 0) && !*storeMode {
		fmt.Fprintln(os.Stderr, "popbench: -chaosstart/-chaosstop window the -store path's injectors")
		os.Exit(2)
	}
	if *sampleDur > 0 && !*storeMode {
		fmt.Fprintln(os.Stderr, "popbench: -sample applies to the -store path (-figure timeline samples the canonical run)")
		os.Exit(2)
	}
	if *valSize != "" && !*storeMode {
		fmt.Fprintln(os.Stderr, "popbench: -valsize applies to the -store path")
		os.Exit(2)
	}
	valMin, valMax, valSmallPct, err := parseValSize(*valSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
		os.Exit(2)
	}
	if *serveMode {
		if err := serveSweep(serveSweepOpts{
			backing: *backing, conns: *connsCSV, slots: *slots, window: *window,
			openRate: *openRate, getPct: *getPct, keys: *keyRange, dist: dist,
			duration: *duration, seed: *seed, policies: *policies,
			ycsb: *ycsbName, chaos: chaosCfg, jsonPath: *jsonOut,
			render: render, quiet: *quiet,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storeMode {
		if err := storeSweep(storeSweepOpts{
			backing: *backing, shards: *shardsCSV, batches: *batchCSV,
			groups: *groupsCSV, mputPct: *mputPct, jsonPath: *jsonOut,
			keys: *keyRange, dist: dist, duration: *duration, threads: *threads,
			seed: *seed, policies: *policies, render: render, quiet: *quiet,
			churn: workload.Churn{AfterOps: *churnOps}, rthresh: *rthresh,
			ycsb: *ycsbName, chaos: chaosCfg,
			chaosStart: *chaosFrom, chaosStop: *chaosTo, sample: *sampleDur,
			trace: trace, traceName: *traceFile, tracePaced: *tracePaced,
			valSpec: *valSize, valMin: valMin, valMax: valMax, valSmallPct: valSmallPct,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dsName != "" {
		if err := directSweep(sweepOpts{
			ds: *dsName, mix: *mixName, rangePct: *rangePct, rangeSpan: *rangeSpan,
			keyRange: *keyRange, dist: dist, duration: *duration, threads: *threads,
			seed: *seed, policies: *policies, render: render, quiet: *quiet,
			churn: workload.Churn{AfterOps: *churnOps}, rthresh: *rthresh,
			jsonPath: *jsonOut,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *figureID == "" {
		fmt.Fprintln(os.Stderr, "popbench: -figure or -ds required (use -list to see figure ids)")
		os.Exit(2)
	}

	ctx := figures.Ctx{
		Duration: *duration,
		Scale:    *scale,
		Seed:     *seed,
	}
	if !*quiet {
		ctx.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if ctx.Threads, err = parseInts(*threads); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	if *policies != "" {
		for _, name := range strings.Split(*policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
				os.Exit(2)
			}
			ctx.Policies = append(ctx.Policies, p)
		}
	}

	var toRun []figures.Figure
	if *figureID == "all" {
		toRun = figures.All()
	} else {
		for _, id := range strings.Split(*figureID, ",") {
			f, ok := figures.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "popbench: unknown figure %q (use -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, f)
		}
	}

	for _, f := range toRun {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", f.ID, f.Desc)
		}
		series, err := f.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %s failed: %v\n", f.ID, err)
			os.Exit(1)
		}
		for i := range series {
			if err := render(&series[i]); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: write: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// sweepOpts carries the -ds direct-sweep flag values.
type sweepOpts struct {
	ds, mix   string
	rangePct  int // -1 = auto
	rangeSpan int64
	keyRange  int64
	dist      workload.Dist
	churn     workload.Churn
	rthresh   int
	duration  time.Duration
	threads   string
	seed      uint64
	policies  string
	jsonPath  string // JSON-lines sink ("" = none)
	render    func(*report.Series) error
	quiet     bool
}

// storeSweepOpts carries the -store sweep flag values.
type storeSweepOpts struct {
	backing     string
	shards      string // csv shard counts
	batches     string // csv batch sizes
	groups      string // csv domain-group member counts
	mputPct     int    // PutBatch share carved from the put share
	jsonPath    string // JSON records sink ("" = none)
	keys        int64
	dist        workload.Dist
	churn       workload.Churn
	rthresh     int    // per-slot reclamation threshold (0 = paper default)
	ycsb        string // YCSB workload name ("" = serve mix)
	trace       []workload.TraceOp
	traceName   string
	tracePaced  bool
	chaos       chaos.Config
	chaosStart  time.Duration // burst window start ("" = immediate)
	chaosStop   time.Duration // burst window end (0 = run end)
	sample      time.Duration // telemetry sampling interval (0 = off)
	valSpec     string        // the raw -valsize spec (title/labels; "" = defaults)
	valMin      int           // payload size bounds (0 = harness defaults)
	valMax      int
	valSmallPct int // bimodal small-share percent (0 = uniform draw)
	duration    time.Duration
	threads     string
	seed        uint64
	policies    string
	render      func(*report.Series) error
	quiet       bool
}

// serveSweepOpts carries the -serve sweep flag values.
type serveSweepOpts struct {
	backing  string
	conns    string // csv connection counts
	slots    int
	window   time.Duration
	openRate float64
	getPct   int
	keys     int64
	dist     workload.Dist
	ycsb     string // YCSB workload name ("" = plain get/set mix)
	chaos    chaos.Config
	jsonPath string // JSON-lines sink ("" = none)
	duration time.Duration
	seed     uint64
	policies string
	render   func(*report.Series) error
	quiet    bool
}

// serveSweep runs the live TCP serving front across connection counts ×
// policies: one row per connection count, one column per policy, one
// table per metric. Rows where conns exceed -slots are the admission
// story — clients queue for thread leases instead of being refused, and
// the wait shows up in the client-observed tails and the admission-wait
// distribution.
func serveSweep(o serveSweepOpts) error {
	connList, err := parseInts(o.conns)
	if err != nil {
		return fmt.Errorf("bad -conns: %w", err)
	}
	ps := core.Policies()
	if o.policies != "" {
		ps = ps[:0]
		for _, name := range strings.Split(o.policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			ps = append(ps, p)
		}
	}
	label := ""
	if o.ycsb != "" {
		// The wire protocol speaks get/set/delete: A–D map onto it
		// (their mixes are reads plus writes); E scans and F needs
		// read-modify-write, which have no wire command.
		w, err := workload.ParseYCSB(o.ycsb)
		if err != nil {
			return err
		}
		if w.Mix.ScanPct > 0 || w.Mix.RMWPct > 0 {
			return fmt.Errorf("YCSB %s needs scan/rmw; the serving front supports A-D", w.Name)
		}
		o.getPct = w.Mix.GetPct
		o.dist = w.Dist
		label = fmt.Sprintf("YCSB %s, ", w.Name)
	}
	loop := "closed loop"
	if o.openRate > 0 {
		loop = fmt.Sprintf("open loop %.0f op/s", o.openRate)
	}
	if o.chaos.Enabled() {
		loop += ", chaos"
	}
	title := fmt.Sprintf("serve %s (%s%d slots, %d keys, %v dist, %d%% gets, %s)",
		o.backing, label, o.slots, o.keys, o.dist, o.getPct, loop)
	ctx := figures.Ctx{
		Duration: o.duration,
		Seed:     o.seed,
		Log:      func(string, ...any) {},
	}
	if !o.quiet {
		ctx.Log = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	metrics := figures.ServeMetrics()
	if o.chaos.Enabled() {
		metrics = append(metrics,
			figures.ServeMetric{Name: "chaos injector ops", Get: func(r harness.ServeResult) float64 { return float64(r.Chaos.Ops) }},
			figures.ServeMetric{Name: "chaos stall windows", Get: func(r harness.ServeResult) float64 { return float64(r.Chaos.Stalls) }},
			figures.ServeMetric{Name: "chaos lease cycles", Get: func(r harness.ServeResult) float64 { return float64(r.Chaos.Leases) }},
		)
	}
	series, err := figures.SweepServeConns(ctx, title, harness.ServeConfig{
		Slots:    o.slots,
		Keys:     o.keys,
		Backing:  o.backing,
		Window:   o.window,
		GetPct:   o.getPct,
		OpenRate: o.openRate,
		Dist:     o.dist,
		Chaos:    o.chaos,
	}, connList, ps, metrics)
	if err != nil {
		return err
	}
	for i := range series {
		if err := o.render(&series[i]); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	}
	if o.jsonPath != "" {
		names := make([]string, len(metrics))
		for i, m := range metrics {
			names[i] = m.Name
		}
		if err := appendJSONLines(o.jsonPath, seriesRecords("serve", o.backing, names, series)); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
	}
	return nil
}

// storeSweep runs the KV front across shards × policies × batch sizes
// at the highest requested thread count: one row per (shards, batch)
// combination, one column per policy, one table per metric. This is
// the capacity-planning view of the store — how shard count and batch
// width trade against each policy's serving tails.
func storeSweep(o storeSweepOpts) error {
	shardList, err := parseInts(o.shards)
	if err != nil {
		return fmt.Errorf("bad -shards: %w", err)
	}
	batchList, err := parseInts(o.batches)
	if err != nil {
		return fmt.Errorf("bad -batch: %w", err)
	}
	groupList, err := parseInts(o.groups)
	if err != nil {
		return fmt.Errorf("bad -groups: %w", err)
	}
	if o.groups == "" {
		groupList = []int{1}
	}
	threadCounts, err := parseInts(o.threads)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	threads := threadCounts[len(threadCounts)-1]
	ps := core.Policies()
	if o.policies != "" {
		ps = ps[:0]
		for _, name := range strings.Split(o.policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			ps = append(ps, p)
		}
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}

	metrics := []figures.StoreMetric{
		{Name: "throughput (ops/s)", Get: func(r harness.StoreResult) float64 { return r.Throughput }},
		{Name: "served keys/s", Get: func(r harness.StoreResult) float64 { return r.KeyTput }},
		figures.StoreOpLatencyMetric("get latency p50 (µs)", harness.SOpGet, 0.50),
		figures.StoreOpLatencyMetric("get latency p99 (µs)", harness.SOpGet, 0.99),
		figures.StoreOpLatencyMetric("mget latency p99 (µs)", harness.SOpMGet, 0.99),
		figures.StoreOpLatencyMetric("put latency p99 (µs)", harness.SOpPut, 0.99),
		{Name: "stale value reads", Get: func(r harness.StoreResult) float64 { return float64(r.Stale) }},
		{Name: "value checksum failures", Get: func(r harness.StoreResult) float64 { return float64(r.ValueErrors) }},
		// Allocation accounting: whole-process heap-allocation rate over
		// the measured phase — the sweep-level view of the hot-path
		// memory diet (inline values and pooled nodes cost zero here).
		{Name: "allocs/op", Get: func(r harness.StoreResult) float64 { return r.AllocsPerOp }},
		{Name: "alloc bytes/op", Get: func(r harness.StoreResult) float64 { return r.AllocBytesPerOp }},
		{Name: "unreclaimed at run end (nodes)", Get: func(r harness.StoreResult) float64 { return float64(r.Unreclaimed) }},
		{Name: "leaked after flush (nodes)", Get: func(r harness.StoreResult) float64 { return float64(r.LeakedAfter) }},
		// The fan-out view (satellite of the domain-group work): how many
		// thread-list entries a reclamation pass walks, and how many pings
		// it sends — the quantity grouping divides by the member count.
		{Name: "reclaim pings per pass", Get: func(r harness.StoreResult) float64 { return r.ReclaimDetail.PingsPerPass }},
		{Name: "reclaim threads scanned per pass", Get: func(r harness.StoreResult) float64 { return r.ReclaimDetail.ScannedPerPass }},
	}
	if o.churn.Enabled() {
		// Elastic sweeps report the turnover they generated, so tails
		// and garbage are explainable per lease rate.
		metrics = append(metrics,
			figures.StoreMetric{Name: "thread releases", Get: func(r harness.StoreResult) float64 { return float64(r.Lifecycle.Releases) }},
			figures.StoreMetric{Name: "orphan nodes adopted", Get: func(r harness.StoreResult) float64 { return float64(r.Lifecycle.OrphansAdopted) }},
		)
	}
	// Ask the store layer itself whether the backing scans (a throwaway
	// probe, the harness.RangeCapable pattern) — this also surfaces an
	// unknown -backing as an error before the sweep starts.
	probe, err := store.New(core.NewDomainGroup(core.NR, 1, 1, nil), store.Config{Shards: 1, Backing: o.backing})
	if err != nil {
		return err
	}
	traceMode := len(o.trace) > 0
	mix := workload.StoreServe
	mixLabel := "serve mix"
	if o.ycsb != "" {
		w, err := workload.ParseYCSB(o.ycsb)
		if err != nil {
			return err
		}
		mix = w.Mix
		o.dist = w.Dist
		mixLabel = "YCSB " + w.Name
	}
	if traceMode {
		mixLabel = fmt.Sprintf("trace %s, %d ops", o.traceName, len(o.trace))
		if o.tracePaced {
			mixLabel += ", paced"
		}
	}
	switch {
	case probe.Ordered():
		metrics = append(metrics, figures.StoreOpLatencyMetric("scan latency p99 (µs)", harness.SOpScan, 0.99))
	case o.ycsb != "" && mix.ScanPct > 0:
		// A scanning YCSB workload on an unordered backing would not be
		// that workload anymore; scan traces are rejected by the harness.
		return fmt.Errorf("YCSB %s scans but backing %q is unordered (pick skl, abt, hml, ll or dgt)", o.ycsb, o.backing)
	default:
		// Unordered backings cannot scan: fold the scan share into gets.
		mix.GetPct += mix.ScanPct
		mix.ScanPct = 0
	}
	if o.mputPct > 0 {
		// Carve the batched-put share out of puts so the overall write
		// rate stays the control variable.
		if traceMode {
			return fmt.Errorf("-mputpct does not apply to trace replay (the trace is the workload)")
		}
		if o.mputPct > mix.PutPct {
			return fmt.Errorf("-mputpct %d exceeds the mix's put share (%d%%)", o.mputPct, mix.PutPct)
		}
		mix.PutPct -= o.mputPct
		mix.MPutPct += o.mputPct
	}
	if mix.RMWPct > 0 || traceMode {
		metrics = append(metrics, figures.StoreOpLatencyMetric("rmw latency p99 (µs)", harness.SOpRMW, 0.99))
	}
	if mix.MPutPct > 0 {
		metrics = append(metrics, figures.StoreOpLatencyMetric("mput latency p99 (µs)", harness.SOpMPut, 0.99))
	}
	if o.chaos.Enabled() {
		metrics = append(metrics,
			figures.StoreMetric{Name: "chaos injector ops", Get: func(r harness.StoreResult) float64 { return float64(r.Chaos.Ops) }},
			figures.StoreMetric{Name: "chaos stall windows", Get: func(r harness.StoreResult) float64 { return float64(r.Chaos.Stalls) }},
			figures.StoreMetric{Name: "chaos lease cycles", Get: func(r harness.StoreResult) float64 { return float64(r.Chaos.Leases) }},
		)
	}

	title := fmt.Sprintf("store %s (%s, %d keys, %v dist, %d threads)", o.backing, mixLabel, o.keys, o.dist, threads)
	if o.valSpec != "" {
		title += " valsize=" + o.valSpec
	}
	if o.churn.Enabled() {
		title += fmt.Sprintf(" churn=%d", o.churn.AfterOps)
	}
	if o.chaos.Enabled() {
		title += " chaos"
	}
	series := make([]report.Series, len(metrics))
	for i, m := range metrics {
		series[i] = report.Series{
			Title:  fmt.Sprintf("%s — %s", title, m.Name),
			XLabel: "shards×batch",
			Names:  names,
		}
	}
	log := func(string, ...any) {}
	if !o.quiet {
		log = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	var jsonRecs []storeJSONRecord
	var timelines []report.Series
	for _, nshards := range shardList {
		for _, ngroups := range groupList {
			for _, nbatch := range batchList {
				cells := make([][]float64, len(metrics))
				for i := range cells {
					cells[i] = make([]float64, len(ps))
				}
				for pi, p := range ps {
					log("  store: shards=%d groups=%d batch=%d policy=%v", nshards, ngroups, nbatch, p)
					res, err := harness.RunStore(harness.StoreConfig{
						Policy:           p,
						Threads:          threads,
						Duration:         o.duration,
						Keys:             o.keys,
						Shards:           nshards,
						Groups:           ngroups,
						Backing:          o.backing,
						Mix:              mix,
						Dist:             o.dist,
						Churn:            o.churn,
						Trace:            o.trace,
						TracePaced:       o.tracePaced,
						Chaos:            o.chaos,
						ChaosStart:       o.chaosStart,
						ChaosStop:        o.chaosStop,
						SampleEvery:      o.sample,
						BatchSize:        nbatch,
						ValueMin:         o.valMin,
						ValueMax:         o.valMax,
						ValueSmallPct:    o.valSmallPct,
						OpLatency:        true,
						ReclaimThreshold: o.rthresh,
						Seed:             o.seed,
					})
					if err != nil {
						return fmt.Errorf("store [shards=%d groups=%d batch=%d policy=%v]: %w", nshards, ngroups, nbatch, p, err)
					}
					for mi, m := range metrics {
						cells[mi][pi] = m.Get(res)
					}
					if res.Timeline != nil {
						timelines = append(timelines, figures.TimelineSeries(
							fmt.Sprintf("%s — timeline [shards=%d groups=%d batch=%d policy=%v, sample %v]",
								title, nshards, ngroups, nbatch, p, o.sample), res.Timeline))
					}
					if o.jsonPath != "" {
						rec := storeJSONRecord{
							Backing: o.backing, Policy: p.String(),
							Shards: nshards, Groups: ngroups, Batch: nbatch,
							Threads: threads, Metrics: map[string]float64{},
							Timeline: res.Timeline,
						}
						for mi, m := range metrics {
							rec.Metrics[m.Name] = cells[mi][pi]
						}
						jsonRecs = append(jsonRecs, rec)
					}
				}
				// Keep the ungrouped label bit-identical to the pre-group
				// sweeps ("8x32"), appending the member count only when it
				// actually differs from one domain.
				label := fmt.Sprintf("%dx%d", nshards, nbatch)
				if ngroups != 1 {
					label += fmt.Sprintf("g%d", ngroups)
				}
				for mi := range series {
					series[mi].AddRow(label, cells[mi])
				}
			}
		}
	}
	for i := range series {
		if err := o.render(&series[i]); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	}
	for i := range timelines {
		if err := o.render(&timelines[i]); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	}
	if o.jsonPath != "" {
		if err := appendJSONLines(o.jsonPath, jsonRecs); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
	}
	return nil
}

// storeJSONRecord is one (shards, groups, batch, policy) cell of a
// store sweep, flattened for machine consumption (CI's BENCH_store.json
// trajectory).
type storeJSONRecord struct {
	Backing  string              `json:"backing"`
	Policy   string              `json:"policy"`
	Shards   int                 `json:"shards"`
	Groups   int                 `json:"groups"`
	Batch    int                 `json:"batch"`
	Threads  int                 `json:"threads"`
	Metrics  map[string]float64  `json:"metrics"`
	Timeline *telemetry.Timeline `json:"timeline,omitempty"` // present with -sample
}

// benchJSONRecord is one (x, policy) cell of a -ds or -serve sweep,
// flattened for machine consumption like storeJSONRecord is for -store
// (CI's BENCH_ds.json / BENCH_serve.json trajectories). X is the swept
// axis value: a thread count for -ds, a connection count for -serve.
type benchJSONRecord struct {
	Sweep   string             `json:"sweep"`  // "ds" or "serve"
	Target  string             `json:"target"` // structure (-ds) or backing (-serve)
	Policy  string             `json:"policy"`
	X       string             `json:"x"`
	Metrics map[string]float64 `json:"metrics"`
}

// seriesRecords flattens per-metric series (identical row/column grids,
// one series per metric, as SweepThreads/SweepServeConns build) into
// one record per (row, policy) cell.
func seriesRecords(sweep, target string, metricNames []string, series []report.Series) []benchJSONRecord {
	if len(series) == 0 {
		return nil
	}
	var recs []benchJSONRecord
	base := &series[0]
	for ri := range base.Rows {
		for ci, policy := range base.Names {
			rec := benchJSONRecord{
				Sweep: sweep, Target: target, Policy: policy,
				X: base.Rows[ri].X, Metrics: map[string]float64{},
			}
			for si := range series {
				rec.Metrics[metricNames[si]] = series[si].Rows[ri].Cells[ci]
			}
			recs = append(recs, rec)
		}
	}
	return recs
}

// appendJSONLines appends records to path as JSON lines, so repeated
// sweep invocations (CI runs several) accumulate one trajectory file.
func appendJSONLines[T any](path string, recs []T) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// directSweep runs one structure × all requested policies × the thread
// sweep and prints throughput, range throughput and per-scan latency
// quantiles (when the mix scans), and end-of-run memory state.
func directSweep(o sweepOpts) error {
	var mix workload.Mix
	switch o.mix {
	case "read-heavy":
		mix = workload.ReadHeavy
	case "update-heavy":
		mix = workload.UpdateHeavy
	case "scan-heavy":
		mix = workload.ScanHeavy
	case "kv":
		mix = workload.KVStore
	default:
		return fmt.Errorf("unknown mix %q (want read-heavy, update-heavy, scan-heavy or kv)", o.mix)
	}
	if o.rangePct < 0 {
		// Auto: range-capable structures get a 10% scan share by default
		// (the range dimension is the point of sweeping them); everything
		// else stays untouched — mixes that already scan, mixes that
		// cannot give up 10% of contains, and the kv mix (any overwrite
		// share), whose advertised get/put/overwrite/delete split must
		// stay comparable across structures. Pass -rangepct explicitly to
		// add scans to a kv sweep.
		o.rangePct = 0
		if harness.RangeCapable(o.ds) && mix.RangePct == 0 && mix.OverwritePct == 0 && mix.ContainsPct >= 10 {
			o.rangePct = 10
		}
	}
	if o.rangePct > 0 {
		// Carve the range share out of contains so the mix still sums to
		// 100 (update rates are the sweep's control variable).
		if o.rangePct > mix.ContainsPct {
			return fmt.Errorf("-rangepct %d exceeds the %s mix's contains share (%d%%)", o.rangePct, o.mix, mix.ContainsPct)
		}
		mix.ContainsPct -= o.rangePct
		mix.RangePct += o.rangePct
	}
	if o.rangeSpan <= 0 {
		return fmt.Errorf("-rangespan must be positive, got %d", o.rangeSpan)
	}

	threadCounts, err := parseInts(o.threads)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	ps := core.Policies()
	if o.policies != "" {
		ps = ps[:0]
		for _, name := range strings.Split(o.policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			ps = append(ps, p)
		}
	}

	title := fmt.Sprintf("%s %s (keyrange %d", o.ds, o.mix, o.keyRange)
	if mix.RangePct > 0 {
		title += fmt.Sprintf(", %d%% range queries, span %d", mix.RangePct, o.rangeSpan)
	}
	if o.churn.Enabled() {
		title += fmt.Sprintf(", churn %d ops/lease", o.churn.AfterOps)
	}
	title += ")"
	metrics := []figures.Metric{
		{Name: "throughput (ops/s)", Get: func(r harness.Result) float64 { return r.Throughput }},
	}
	// Per-op-class tail latencies: direct sweeps always profile
	// (harness.Config.OpLatency below), so the read/write split is
	// visible per policy, not just the blended mean.
	for _, cl := range []harness.OpClass{harness.OpGet, harness.OpPut, harness.OpOverwrite, harness.OpDelete} {
		if cl.MixShare(mix) == 0 {
			continue
		}
		cl := cl
		metrics = append(metrics,
			figures.OpLatencyMetric(fmt.Sprintf("%v latency p50 (µs)", cl), cl, 0.50),
			figures.OpLatencyMetric(fmt.Sprintf("%v latency p99 (µs)", cl), cl, 0.99),
		)
	}
	metrics = append(metrics, figures.Metric{
		Name: "value checksum failures",
		Get:  func(r harness.Result) float64 { return float64(r.ValueErrors) },
	}, figures.Metric{
		Name: "allocs/op",
		Get:  func(r harness.Result) float64 { return r.AllocsPerOp },
	}, figures.Metric{
		Name: "alloc bytes/op",
		Get:  func(r harness.Result) float64 { return r.AllocBytesPerOp },
	})
	if mix.RangePct > 0 {
		metrics = append(metrics,
			figures.Metric{Name: "range throughput (scans/s)", Get: func(r harness.Result) float64 { return r.RangeTput }},
			figures.Metric{Name: "keys per scan", Get: func(r harness.Result) float64 {
				if r.RangeOps == 0 {
					return 0
				}
				return float64(r.RangeKeys) / float64(r.RangeOps)
			}},
			// The scan-latency tail per policy — the histogram popbench
			// exists to expose: long reads hurt different schemes very
			// differently (cf. the paper's §5.1.2).
			figures.ScanLatencyMetric("scan latency p50 (µs)", 0.50),
			figures.ScanLatencyMetric("scan latency p90 (µs)", 0.90),
			figures.ScanLatencyMetric("scan latency p99 (µs)", 0.99),
			figures.ScanLatencyMaxMetric("scan latency max (µs)"),
		)
	}
	metrics = append(metrics,
		figures.Metric{Name: "unreclaimed at run end (nodes)", Get: func(r harness.Result) float64 { return float64(r.Unreclaimed) }},
		figures.Metric{Name: "leaked after flush (nodes)", Get: func(r harness.Result) float64 { return float64(r.LeakedAfter) }},
	)
	if o.churn.Enabled() {
		metrics = append(metrics,
			figures.Metric{Name: "thread releases", Get: func(r harness.Result) float64 { return float64(r.Lifecycle.Releases) }},
			figures.Metric{Name: "orphan nodes adopted", Get: func(r harness.Result) float64 { return float64(r.Lifecycle.OrphansAdopted) }},
		)
	}

	ctx := figures.Ctx{
		Duration: o.duration,
		Threads:  threadCounts,
		Seed:     o.seed,
		Log:      func(string, ...any) {},
	}
	if !o.quiet {
		ctx.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	series, err := figures.SweepThreads(ctx, title, harness.Config{
		DS:               o.ds,
		KeyRange:         o.keyRange,
		Mix:              mix,
		RangeSpan:        o.rangeSpan,
		Dist:             o.dist,
		Churn:            o.churn,
		ReclaimThreshold: o.rthresh,
		OpLatency:        true,
	}, ps, metrics)
	if err != nil {
		return err
	}
	for i := range series {
		if err := o.render(&series[i]); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	}
	if o.jsonPath != "" {
		names := make([]string, len(metrics))
		for i, m := range metrics {
			names[i] = m.Name
		}
		if err := appendJSONLines(o.jsonPath, seriesRecords("ds", o.ds, names, series)); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
	}
	return nil
}

// parseValSize parses the -valsize spec into harness StoreConfig value
// knobs: "" keeps the harness defaults, "fixed:N" pins every payload to
// N bytes, "uniform:MIN,MAX" draws uniformly, and
// "mixed:PCT,SMALL,LARGE" makes PCT% of payloads SMALL bytes and the
// rest LARGE — the inline-vs-arena ratio dial.
func parseValSize(spec string) (vmin, vmax, smallPct int, err error) {
	if spec == "" {
		return 0, 0, 0, nil
	}
	usage := fmt.Errorf("bad -valsize %q (want fixed:N, uniform:MIN,MAX or mixed:PCT,SMALL,LARGE)", spec)
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, 0, usage
	}
	nums, err := parseInts(rest)
	if err != nil {
		return 0, 0, 0, usage
	}
	switch {
	case kind == "fixed" && len(nums) == 1:
		return nums[0], nums[0], 0, nil
	case kind == "uniform" && len(nums) == 2 && nums[0] <= nums[1]:
		return nums[0], nums[1], 0, nil
	case kind == "mixed" && len(nums) == 3 && nums[0] <= 100 && nums[1] <= nums[2]:
		return nums[1], nums[2], nums[0], nil
	}
	return 0, 0, 0, usage
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
