// Command popbench regenerates the paper's figures and runs ad-hoc
// sweeps. Each figure id maps to one experiment from the evaluation
// section (see DESIGN.md's per-experiment index); the output is the same
// series the paper plots, as an aligned table (default), TSV (-tsv) or
// CSV (-csv).
//
// With -ds, popbench instead runs a direct sweep of one data structure
// across policies and thread counts; -rangepct carves range queries out
// of the mix's contains share (requires a range-capable structure: -ds
// skl or -ds abt) and -rangespan sets the scan width. For range-capable
// structures -rangepct defaults to 10 (pass -rangepct 0 to disable);
// whenever the running mix contains scans, the sweep reports per-scan
// latency quantiles (p50/p90/p99/max, from an HDR histogram merged
// across workers) for every policy alongside throughput and memory.
//
// Direct sweeps run with per-operation latency profiling on: every
// policy's table includes p50/p99 per op class (get, put, overwrite,
// delete), plus value-checksum failures (which must be 0 — a nonzero
// count means a stale value was served). The kv mix (70% get / 10% put /
// 15% overwrite / 5% delete) is the KV-serving workload; its overwrite
// share retires a node per hit on the replace-node structures.
//
// Examples:
//
//	popbench -list
//	popbench -figure fig2a -duration 2s -threads 1,2,4,8,16
//	popbench -figure all -scale 128 -duration 500ms -tsv > results.tsv
//	popbench -figure fig4 -policies NR,EBR,NBR,HazardPtrPOP,EpochPOP
//	popbench -ds skl -rangepct 10 -rangespan 200
//	popbench -ds abt -csv > abt-scan-latency.csv
//	popbench -ds abt -mix scan-heavy -keyrange 100000
//	popbench -ds skl -mix kv -duration 1s -csv > skl-kv.csv
//	popbench -ds hmht -mix kv -keyrange 1000000
//
// The -scale flag divides the paper's structure sizes (defaults to 64 so
// a laptop run finishes); -scale 1 runs the full-size structures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pop/internal/core"
	"pop/internal/figures"
	"pop/internal/harness"
	"pop/internal/report"
	"pop/internal/workload"
)

func main() {
	var (
		figureID = flag.String("figure", "", "figure id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available figures and exit")
		duration = flag.Duration("duration", 300*time.Millisecond, "execution time per trial")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
		scale    = flag.Int64("scale", 64, "divide the paper's structure sizes by this factor")
		seed     = flag.Uint64("seed", 42, "trial seed")
		policies = flag.String("policies", "", "comma-separated policy subset (default: the paper's set)")
		tsv      = flag.Bool("tsv", false, "emit TSV instead of aligned tables")
		csv      = flag.Bool("csv", false, "emit CSV (full precision) instead of aligned tables")
		quiet    = flag.Bool("quiet", false, "suppress progress messages")

		dsName    = flag.String("ds", "", "direct sweep of one data structure (hml, ll, hmht, dgt, abt, skl) instead of a figure")
		mixName   = flag.String("mix", "read-heavy", "direct sweep mix: read-heavy, update-heavy, scan-heavy or kv")
		rangePct  = flag.Int("rangepct", -1, "percent of operations that are range queries, taken from the mix's contains share (-1 = auto: 10 for range-capable structures, 0 otherwise)")
		rangeSpan = flag.Int64("rangespan", workload.DefaultRangeSpan, "keys per range query")
		keyRange  = flag.Int64("keyrange", 16384, "direct sweep key range")
	)
	flag.Parse()

	render := func(s *report.Series) error { return s.WriteTable(os.Stdout) }
	switch {
	case *csv:
		render = func(s *report.Series) error { return s.WriteCSV(os.Stdout) }
	case *tsv:
		render = func(s *report.Series) error { return s.WriteTSV(os.Stdout) }
	}

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-18s %s\n", f.ID, f.Desc)
		}
		return
	}
	if *dsName != "" {
		if err := directSweep(sweepOpts{
			ds: *dsName, mix: *mixName, rangePct: *rangePct, rangeSpan: *rangeSpan,
			keyRange: *keyRange, duration: *duration, threads: *threads,
			seed: *seed, policies: *policies, render: render, quiet: *quiet,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *figureID == "" {
		fmt.Fprintln(os.Stderr, "popbench: -figure or -ds required (use -list to see figure ids)")
		os.Exit(2)
	}

	ctx := figures.Ctx{
		Duration: *duration,
		Scale:    *scale,
		Seed:     *seed,
	}
	if !*quiet {
		ctx.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var err error
	if ctx.Threads, err = parseInts(*threads); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	if *policies != "" {
		for _, name := range strings.Split(*policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
				os.Exit(2)
			}
			ctx.Policies = append(ctx.Policies, p)
		}
	}

	var toRun []figures.Figure
	if *figureID == "all" {
		toRun = figures.All()
	} else {
		for _, id := range strings.Split(*figureID, ",") {
			f, ok := figures.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "popbench: unknown figure %q (use -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, f)
		}
	}

	for _, f := range toRun {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", f.ID, f.Desc)
		}
		series, err := f.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %s failed: %v\n", f.ID, err)
			os.Exit(1)
		}
		for i := range series {
			if err := render(&series[i]); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: write: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// sweepOpts carries the -ds direct-sweep flag values.
type sweepOpts struct {
	ds, mix   string
	rangePct  int // -1 = auto
	rangeSpan int64
	keyRange  int64
	duration  time.Duration
	threads   string
	seed      uint64
	policies  string
	render    func(*report.Series) error
	quiet     bool
}

// directSweep runs one structure × all requested policies × the thread
// sweep and prints throughput, range throughput and per-scan latency
// quantiles (when the mix scans), and end-of-run memory state.
func directSweep(o sweepOpts) error {
	var mix workload.Mix
	switch o.mix {
	case "read-heavy":
		mix = workload.ReadHeavy
	case "update-heavy":
		mix = workload.UpdateHeavy
	case "scan-heavy":
		mix = workload.ScanHeavy
	case "kv":
		mix = workload.KVStore
	default:
		return fmt.Errorf("unknown mix %q (want read-heavy, update-heavy, scan-heavy or kv)", o.mix)
	}
	if o.rangePct < 0 {
		// Auto: range-capable structures get a 10% scan share by default
		// (the range dimension is the point of sweeping them); everything
		// else stays untouched — mixes that already scan, mixes that
		// cannot give up 10% of contains, and the kv mix (any overwrite
		// share), whose advertised get/put/overwrite/delete split must
		// stay comparable across structures. Pass -rangepct explicitly to
		// add scans to a kv sweep.
		o.rangePct = 0
		if harness.RangeCapable(o.ds) && mix.RangePct == 0 && mix.OverwritePct == 0 && mix.ContainsPct >= 10 {
			o.rangePct = 10
		}
	}
	if o.rangePct > 0 {
		// Carve the range share out of contains so the mix still sums to
		// 100 (update rates are the sweep's control variable).
		if o.rangePct > mix.ContainsPct {
			return fmt.Errorf("-rangepct %d exceeds the %s mix's contains share (%d%%)", o.rangePct, o.mix, mix.ContainsPct)
		}
		mix.ContainsPct -= o.rangePct
		mix.RangePct += o.rangePct
	}
	if o.rangeSpan <= 0 {
		return fmt.Errorf("-rangespan must be positive, got %d", o.rangeSpan)
	}

	threadCounts, err := parseInts(o.threads)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	ps := core.Policies()
	if o.policies != "" {
		ps = ps[:0]
		for _, name := range strings.Split(o.policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			ps = append(ps, p)
		}
	}

	title := fmt.Sprintf("%s %s (keyrange %d", o.ds, o.mix, o.keyRange)
	if mix.RangePct > 0 {
		title += fmt.Sprintf(", %d%% range queries, span %d", mix.RangePct, o.rangeSpan)
	}
	title += ")"
	metrics := []figures.Metric{
		{Name: "throughput (ops/s)", Get: func(r harness.Result) float64 { return r.Throughput }},
	}
	// Per-op-class tail latencies: direct sweeps always profile
	// (harness.Config.OpLatency below), so the read/write split is
	// visible per policy, not just the blended mean.
	for _, cl := range []harness.OpClass{harness.OpGet, harness.OpPut, harness.OpOverwrite, harness.OpDelete} {
		if cl.MixShare(mix) == 0 {
			continue
		}
		cl := cl
		metrics = append(metrics,
			figures.OpLatencyMetric(fmt.Sprintf("%v latency p50 (µs)", cl), cl, 0.50),
			figures.OpLatencyMetric(fmt.Sprintf("%v latency p99 (µs)", cl), cl, 0.99),
		)
	}
	metrics = append(metrics, figures.Metric{
		Name: "value checksum failures",
		Get:  func(r harness.Result) float64 { return float64(r.ValueErrors) },
	})
	if mix.RangePct > 0 {
		metrics = append(metrics,
			figures.Metric{Name: "range throughput (scans/s)", Get: func(r harness.Result) float64 { return r.RangeTput }},
			figures.Metric{Name: "keys per scan", Get: func(r harness.Result) float64 {
				if r.RangeOps == 0 {
					return 0
				}
				return float64(r.RangeKeys) / float64(r.RangeOps)
			}},
			// The scan-latency tail per policy — the histogram popbench
			// exists to expose: long reads hurt different schemes very
			// differently (cf. the paper's §5.1.2).
			figures.ScanLatencyMetric("scan latency p50 (µs)", 0.50),
			figures.ScanLatencyMetric("scan latency p90 (µs)", 0.90),
			figures.ScanLatencyMetric("scan latency p99 (µs)", 0.99),
			figures.ScanLatencyMaxMetric("scan latency max (µs)"),
		)
	}
	metrics = append(metrics,
		figures.Metric{Name: "unreclaimed at run end (nodes)", Get: func(r harness.Result) float64 { return float64(r.Unreclaimed) }},
		figures.Metric{Name: "leaked after flush (nodes)", Get: func(r harness.Result) float64 { return float64(r.LeakedAfter) }},
	)

	ctx := figures.Ctx{
		Duration: o.duration,
		Threads:  threadCounts,
		Seed:     o.seed,
		Log:      func(string, ...any) {},
	}
	if !o.quiet {
		ctx.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	series, err := figures.SweepThreads(ctx, title, harness.Config{
		DS:        o.ds,
		KeyRange:  o.keyRange,
		Mix:       mix,
		RangeSpan: o.rangeSpan,
		OpLatency: true,
	}, ps, metrics)
	if err != nil {
		return err
	}
	for i := range series {
		if err := o.render(&series[i]); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
