// Command popbench regenerates the paper's figures. Each figure id maps
// to one experiment from the evaluation section (see DESIGN.md's
// per-experiment index); the output is the same series the paper plots,
// as an aligned table (default) or TSV (-tsv).
//
// Examples:
//
//	popbench -list
//	popbench -figure fig2a -duration 2s -threads 1,2,4,8,16
//	popbench -figure all -scale 128 -duration 500ms -tsv > results.tsv
//	popbench -figure fig4 -policies NR,EBR,NBR,HazardPtrPOP,EpochPOP
//
// The -scale flag divides the paper's structure sizes (defaults to 64 so
// a laptop run finishes); -scale 1 runs the full-size structures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pop/internal/core"
	"pop/internal/figures"
)

func main() {
	var (
		figureID = flag.String("figure", "", "figure id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available figures and exit")
		duration = flag.Duration("duration", 300*time.Millisecond, "execution time per trial")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
		scale    = flag.Int64("scale", 64, "divide the paper's structure sizes by this factor")
		seed     = flag.Uint64("seed", 42, "trial seed")
		policies = flag.String("policies", "", "comma-separated policy subset (default: the paper's set)")
		tsv      = flag.Bool("tsv", false, "emit TSV instead of aligned tables")
		quiet    = flag.Bool("quiet", false, "suppress progress messages")
	)
	flag.Parse()

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-18s %s\n", f.ID, f.Desc)
		}
		return
	}
	if *figureID == "" {
		fmt.Fprintln(os.Stderr, "popbench: -figure required (use -list to see ids)")
		os.Exit(2)
	}

	ctx := figures.Ctx{
		Duration: *duration,
		Scale:    *scale,
		Seed:     *seed,
	}
	if !*quiet {
		ctx.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var err error
	if ctx.Threads, err = parseInts(*threads); err != nil {
		fmt.Fprintf(os.Stderr, "popbench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	if *policies != "" {
		for _, name := range strings.Split(*policies, ",") {
			p, err := core.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "popbench: %v\n", err)
				os.Exit(2)
			}
			ctx.Policies = append(ctx.Policies, p)
		}
	}

	var toRun []figures.Figure
	if *figureID == "all" {
		toRun = figures.All()
	} else {
		for _, id := range strings.Split(*figureID, ",") {
			f, ok := figures.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "popbench: unknown figure %q (use -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, f)
		}
	}

	for _, f := range toRun {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", f.ID, f.Desc)
		}
		series, err := f.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: %s failed: %v\n", f.ID, err)
			os.Exit(1)
		}
		for i := range series {
			if *tsv {
				err = series[i].WriteTSV(os.Stdout)
			} else {
				err = series[i].WriteTable(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "popbench: write: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("thread count must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
