package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"

	"pop/internal/server"
)

// smokeTest drives one scripted client session against the live server
// and checks every reply — the CI self-test behind -smoke.
func smokeTest(s *server.Server) error {
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		return err
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	send := func(cmd string) error {
		_, err := io.WriteString(nc, cmd)
		return err
	}
	expect := func(want string) error {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reading reply: %w", err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			return fmt.Errorf("got %q, want %q", got, want)
		}
		return nil
	}
	steps := []struct{ send, want string }{
		{"set greet 0 0 5\r\nhello\r\n", "STORED"},
		{"add greet 0 0 2\r\nno\r\n", "NOT_STORED"},
		{"get greet\r\n", "VALUE greet 0 5"},
		{"", "hello"},
		{"", "END"},
		{"gets greet missing\r\n", "VALUE greet 0 5 0"},
		{"", "hello"},
		{"", "END"},
		{"delete greet\r\n", "DELETED"},
		{"delete greet\r\n", "NOT_FOUND"},
		{"bogus\r\n", "ERROR"},
	}
	for i, st := range steps {
		if st.send != "" {
			if err := send(st.send); err != nil {
				return fmt.Errorf("step %d: %w", i, err)
			}
		}
		if err := expect(st.want); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	// The stats surface must be present and well-formed.
	if err := send("stats\r\n"); err != nil {
		return err
	}
	saw := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reading stats: %w", err)
		}
		l := strings.TrimRight(line, "\r\n")
		if l == "END" {
			break
		}
		if !strings.HasPrefix(l, "STAT ") {
			return fmt.Errorf("bad stats line %q", l)
		}
		saw++
	}
	if saw < 10 {
		return fmt.Errorf("stats emitted only %d lines", saw)
	}
	if err := send("quit\r\n"); err != nil {
		return err
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return fmt.Errorf("connection alive after quit: %v", err)
	}
	return nil
}

// metricsSmoke exercises the -metrics endpoint: scrape /metrics, push
// traffic through the text protocol, scrape again, and require the
// command counters to have advanced between the two scrapes. It also
// checks /timeline decodes as JSON and "stats telemetry" answers over
// the wire.
func metricsSmoke(maddr string, s *server.Server) error {
	before, err := scrapeMetrics(maddr)
	if err != nil {
		return err
	}
	for _, name := range []string{"pop_cmd_get_total", "pop_conns_accepted_total", "pop_slot_releases_total"} {
		if _, ok := before[name]; !ok {
			return fmt.Errorf("first scrape missing %s", name)
		}
	}
	// Generate traffic between the scrapes.
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		return err
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	if _, err := io.WriteString(nc, "set mk 0 0 3\r\nabc\r\n"); err != nil {
		return err
	}
	if line, _ := r.ReadString('\n'); strings.TrimRight(line, "\r\n") != "STORED" {
		return fmt.Errorf("set for metrics traffic not stored: %q", line)
	}
	for i := 0; i < 32; i++ {
		if _, err := io.WriteString(nc, "get mk\r\n"); err != nil {
			return err
		}
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return fmt.Errorf("metrics traffic get: %w", err)
			}
			if strings.TrimRight(line, "\r\n") == "END" {
				break
			}
		}
	}
	// The wire-level telemetry section must answer too.
	if _, err := io.WriteString(nc, "stats telemetry\r\n"); err != nil {
		return err
	}
	sawTel := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("stats telemetry: %w", err)
		}
		l := strings.TrimRight(line, "\r\n")
		if l == "END" {
			break
		}
		if !strings.HasPrefix(l, "STAT ") {
			return fmt.Errorf("bad stats telemetry line %q", l)
		}
		sawTel++
	}
	if sawTel < 5 {
		return fmt.Errorf("stats telemetry emitted only %d lines", sawTel)
	}
	after, err := scrapeMetrics(maddr)
	if err != nil {
		return err
	}
	for _, name := range []string{"pop_cmd_get_total", "pop_get_hits_total"} {
		if after[name] <= before[name] {
			return fmt.Errorf("%s did not advance between scrapes (%g -> %g)",
				name, before[name], after[name])
		}
	}
	// /timeline must be well-formed JSON with the sampling interval set.
	resp, err := http.Get("http://" + maddr + "/timeline")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var tl struct {
		Every int64 `json:"every_ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		return fmt.Errorf("decoding /timeline: %w", err)
	}
	if tl.Every <= 0 {
		return fmt.Errorf("/timeline every_ns = %d, want > 0", tl.Every)
	}
	return nil
}

// scrapeMetrics fetches /metrics and parses every non-labelled sample
// line into a name -> value map.
func scrapeMetrics(maddr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	vals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad metrics line %q: %w", line, err)
		}
		vals[name] = f
	}
	return vals, sc.Err()
}
