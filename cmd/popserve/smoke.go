package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"

	"pop/internal/server"
)

// smokeTest drives one scripted client session against the live server
// and checks every reply — the CI self-test behind -smoke.
func smokeTest(s *server.Server) error {
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		return err
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	send := func(cmd string) error {
		_, err := io.WriteString(nc, cmd)
		return err
	}
	expect := func(want string) error {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reading reply: %w", err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			return fmt.Errorf("got %q, want %q", got, want)
		}
		return nil
	}
	steps := []struct{ send, want string }{
		{"set greet 0 0 5\r\nhello\r\n", "STORED"},
		{"add greet 0 0 2\r\nno\r\n", "NOT_STORED"},
		{"get greet\r\n", "VALUE greet 0 5"},
		{"", "hello"},
		{"", "END"},
		{"gets greet missing\r\n", "VALUE greet 0 5 0"},
		{"", "hello"},
		{"", "END"},
		{"delete greet\r\n", "DELETED"},
		{"delete greet\r\n", "NOT_FOUND"},
		{"bogus\r\n", "ERROR"},
	}
	for i, st := range steps {
		if st.send != "" {
			if err := send(st.send); err != nil {
				return fmt.Errorf("step %d: %w", i, err)
			}
		}
		if err := expect(st.want); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	// The stats surface must be present and well-formed.
	if err := send("stats\r\n"); err != nil {
		return err
	}
	saw := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("reading stats: %w", err)
		}
		l := strings.TrimRight(line, "\r\n")
		if l == "END" {
			break
		}
		if !strings.HasPrefix(l, "STAT ") {
			return fmt.Errorf("bad stats line %q", l)
		}
		saw++
	}
	if saw < 10 {
		return fmt.Errorf("stats emitted only %d lines", saw)
	}
	if err := send("quit\r\n"); err != nil {
		return err
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return fmt.Errorf("connection alive after quit: %v", err)
	}
	return nil
}
