// Command popserve runs the wire-protocol serving front: a TCP server
// speaking a memcached-text subset (get/gets multi-key, set, add,
// delete, stats, quit, version) over the sharded POP-reclaimed KV
// store. Connections are admission-controlled — at most -slots of them
// execute at once, the rest queue on the blocking handle pool — and
// concurrent single-key gets coalesce per shard into batched protected
// operations.
//
// Examples:
//
//	popserve -addr :11311 -policy EpochPOP -slots 8
//	popserve -policy HazardPtrPOP -backing hmht -shards 16 -window 100us
//	printf 'set greet 0 0 5\r\nhello\r\nget greet\r\nquit\r\n' | nc 127.0.0.1 11311
//
// On SIGINT/SIGTERM the server drains connections, releases every
// thread lease, and prints the final stats snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pop/internal/core"
	"pop/internal/server"
	"pop/internal/store"
	"pop/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11311", "TCP listen address")
		policy   = flag.String("policy", "EpochPOP", "reclamation policy (see popbench -list for names)")
		slots    = flag.Int("slots", 8, "admission slots: connections executing at once")
		shards   = flag.Int("shards", 8, "store shard count (power of two)")
		groups   = flag.Int("groups", 1, "reclamation domain members the shards split across (power of two, <= shards)")
		backing  = flag.String("backing", "skl", "per-shard structure (skl, hmht, hml, abt, ll, dgt)")
		window   = flag.Duration("window", 50*time.Microsecond, "get-coalescing window (negative disables the wait)")
		maxBatch = flag.Int("maxbatch", 64, "coalesced batch cap")
		timeout  = flag.Duration("timeout", 10*time.Second, "admission-queue wait bound per burst")
		maxValue = flag.Int("maxvalue", 0, "value size cap in bytes (0 = arena default)")
		metrics  = flag.String("metrics", "", "telemetry HTTP address serving /metrics, /timeline and /debug/pprof (e.g. 127.0.0.1:9090; empty disables the endpoint)")
		sample   = flag.Duration("sample", 100*time.Millisecond, "telemetry sampling interval (stats telemetry / timeline resolution)")
		smoke    = flag.Bool("smoke", false, "self-test: start, serve one scripted session in-process, verify, exit")
	)
	flag.Parse()

	p, err := core.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserve: %v\n", err)
		os.Exit(2)
	}
	cfg := server.Config{
		Addr:   *addr,
		Policy: p,
		Slots:  *slots,
		Groups: *groups,
		Store: store.Config{
			Shards:      *shards,
			Backing:     *backing,
			MaxValueLen: *maxValue,
		},
		Window:         *window,
		MaxBatch:       *maxBatch,
		AcquireTimeout: *timeout,
	}
	if *smoke {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popserve: %v\n", err)
		os.Exit(1)
	}
	if err := s.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "popserve: %v\n", err)
		os.Exit(1)
	}
	// The live sampler always runs (it powers "stats telemetry" and
	// "stats reset" even without the HTTP endpoint); -metrics
	// additionally exposes it over HTTP with pprof alongside.
	tsampler := telemetry.NewSampler(s.Group(), telemetry.Config{
		Every:  *sample,
		Extras: s,
	})
	tsampler.Start()
	s.SetTelemetry(tsampler)
	defer tsampler.Stop()
	maddr := ""
	if *metrics != "" {
		var stopMetrics func() error
		maddr, stopMetrics, err = tsampler.Serve(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popserve: metrics: %v\n", err)
			s.Close()
			os.Exit(1)
		}
		defer stopMetrics()
	}
	if *smoke {
		if err := smokeTest(s); err != nil {
			fmt.Fprintf(os.Stderr, "popserve: smoke: %v\n", err)
			s.Close()
			os.Exit(1)
		}
		if maddr != "" {
			if err := metricsSmoke(maddr, s); err != nil {
				fmt.Fprintf(os.Stderr, "popserve: metrics smoke: %v\n", err)
				s.Close()
				os.Exit(1)
			}
		}
		if err := shutdown(s); err != nil {
			fmt.Fprintf(os.Stderr, "popserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("popserve: smoke OK")
		return
	}
	fmt.Printf("popserve: %v policy, %d slots, %d×%s shards over %d domain members, listening on %s\n",
		p, *slots, *shards, *backing, s.Group().Members(), s.Addr())
	if maddr != "" {
		fmt.Printf("popserve: telemetry on http://%s/metrics (timeline: /timeline, pprof: /debug/pprof/)\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("popserve: shutting down")
	if err := shutdown(s); err != nil {
		fmt.Fprintf(os.Stderr, "popserve: %v\n", err)
		os.Exit(1)
	}
}

// shutdown closes the server, verifies the lease drain, and prints the
// final counters.
func shutdown(s *server.Server) error {
	st := s.Stats()
	if err := s.Close(); err != nil {
		return err
	}
	lc := s.Group().Lifecycle()
	adm := s.AdmissionWait()
	fmt.Printf("popserve: served %d gets (%d hits), %d sets, %d deletes over %d connections\n",
		st.CmdGet, st.GetHits, st.CmdSet, st.CmdDelete, st.Accepted)
	fmt.Printf("popserve: coalescing: %d gets in %d batches (widest %d)\n",
		st.ExecutorGets, st.CoalescedBatches, st.CoalesceWidest)
	fmt.Printf("popserve: admission: %d waits, %d timeouts, p99 wait %.1fµs\n",
		st.AdmissionWaits, st.AdmissionTimeouts, adm.Quantile(0.99)/1e3)
	if lc.Leased != 0 {
		return fmt.Errorf("%d thread leases leaked after shutdown", lc.Leased)
	}
	fmt.Printf("popserve: clean shutdown — %d slot leases over the run, none leaked\n", lc.Releases)
	return nil
}
