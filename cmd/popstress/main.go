// Command popstress is the torture-test driver: it runs high-churn
// workloads with deliberately tiny reclamation thresholds (maximal
// ping/reclaim traffic), optional fault injection, and verifies the
// shared reclamation invariants (internal/chaos.Invariants) after
// every trial:
//
//   - a quiescent flush drains every retire list (except NR, which leaks
//     by design);
//   - reclamation counters stay sane: frees never exceed retires, and a
//     run that retired plenty made progress;
//   - under -store, served values pass their checksums and the
//     thread-slot lease ledger balances.
//
// A use-after-free in any scheme surfaces here as a double-free panic,
// an arena sequence panic, or an invariant failure. Exit status 0 means
// every trial passed.
//
// Two modes:
//
//	popstress            # map matrix: every structure × policy, update-heavy
//	popstress -store     # KV front under the chaos bundle: stalled readers,
//	                     # GC pressure, lease churn, shard hotspot — per policy
//
// Usage:
//
//	popstress                          # full matrix, quick
//	popstress -duration 2s -threads 8  # heavier
//	popstress -ds hml -policy EpochPOP -stall
//	popstress -store -duration 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pop/internal/chaos"
	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

func main() {
	var (
		dsFlag     = flag.String("ds", "", "single data structure (default: all)")
		policyFlag = flag.String("policy", "", "single policy (default: all)")
		threads    = flag.Int("threads", 4, "worker threads per trial")
		duration   = flag.Duration("duration", 300*time.Millisecond, "per-trial duration")
		keyRange   = flag.Int64("keys", 1024, "key range")
		stall      = flag.Bool("stall", false, "matrix mode: inject a periodically delayed thread")
		storeMode  = flag.Bool("store", false, "store chaos mode: the KV front under the full injector bundle instead of the map matrix")
		seed       = flag.Uint64("seed", uint64(time.Now().UnixNano()), "trial seed")
	)
	flag.Parse()

	policies := core.Policies()
	if *policyFlag != "" {
		p, err := core.ParsePolicy(*policyFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popstress: %v\n", err)
			os.Exit(2)
		}
		policies = []core.Policy{p}
	}

	var failures int
	if *storeMode {
		failures = storeChaos(policies, *threads, *duration, *keyRange, *seed)
	} else {
		structures := harness.DSNames()
		if *dsFlag != "" {
			structures = []string{*dsFlag}
		}
		failures = matrix(structures, policies, *threads, *duration, *keyRange, *stall, *seed)
	}
	if failures > 0 {
		fmt.Printf("popstress: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("popstress: all trials passed")
}

// matrix runs every structure × policy under the update-heavy mix with
// tiny thresholds and checks the shared invariants.
func matrix(structures []string, policies []core.Policy, threads int, duration time.Duration, keyRange int64, stall bool, seed uint64) int {
	failures := 0
	for _, dsName := range structures {
		for _, p := range policies {
			cfg := harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          threads,
				Duration:         duration,
				KeyRange:         keyRange,
				Mix:              workload.UpdateHeavy,
				ReclaimThreshold: 48, // tiny: constant reclamation pressure
				EpochFreq:        8,
				BatchSize:        8,
				Seed:             seed,
			}
			if stall {
				cfg.StallEvery = 2 * time.Millisecond
				cfg.StallLength = duration / 5
			}
			res, err := harness.Run(cfg)
			if err != nil {
				fmt.Printf("FAIL %-5s %-13v run error: %v\n", dsName, p, err)
				failures++
				continue
			}
			if err := check(res); err != nil {
				fmt.Printf("FAIL %-5s %-13v %v\n", dsName, p, err)
				failures++
				continue
			}
			fmt.Printf("ok   %-5s %-13v ops=%-9d retires=%-8d frees=%-8d pings=%-6d maxRetire=%d\n",
				dsName, p, res.Ops, res.Reclaim.Retires, res.Reclaim.Frees,
				res.Reclaim.PingsSent, res.MaxRetire)
		}
	}
	return failures
}

// storeChaos runs the KV front under the full injector bundle for each
// policy and checks every shared invariant, including the value plane
// and the thread-slot lease ledger.
func storeChaos(policies []core.Policy, threads int, duration time.Duration, keyRange int64, seed uint64) int {
	failures := 0
	for _, p := range policies {
		res, err := harness.RunStore(harness.StoreConfig{
			Policy:           p,
			Threads:          threads,
			Duration:         duration,
			Keys:             keyRange,
			Shards:           4,
			Seed:             seed,
			ReclaimThreshold: 48,
			EpochFreq:        8,
			BatchSize:        8,
			Chaos:            chaos.Default(),
		})
		if err != nil {
			fmt.Printf("FAIL store %-13v run error: %v\n", p, err)
			failures++
			continue
		}
		iv := chaos.Invariants{Policy: p}
		var vs []chaos.Violation
		vs = append(vs, iv.CheckValueErrors(res.ValueErrors)...)
		vs = append(vs, iv.CheckLeaked(res.LeakedAfter)...)
		vs = append(vs, iv.CheckCounters(res.Reclaim)...)
		// The trial's workers still hold their handles at snapshot time;
		// the injectors must have released theirs.
		vs = append(vs, iv.CheckLifecycle(res.Lifecycle, threads)...)
		if err := chaos.Errs(vs); err != nil {
			fmt.Printf("FAIL store %-13v %v\n", p, err)
			failures++
			continue
		}
		if res.Chaos.Ops == 0 {
			fmt.Printf("FAIL store %-13v chaos injectors were idle: %+v\n", p, res.Chaos)
			failures++
			continue
		}
		fmt.Printf("ok   store %-13v ops=%-9d chaosOps=%-7d stalls=%-4d leases=%-4d flips=%-4d retires=%-8d frees=%d\n",
			p, res.Ops, res.Chaos.Ops, res.Chaos.Stalls, res.Chaos.Leases, res.Chaos.Flips,
			res.Reclaim.Retires, res.Reclaim.Frees)
	}
	return failures
}

// check validates post-trial invariants through the shared checker.
func check(res harness.Result) error {
	if res.Ops == 0 {
		return fmt.Errorf("zero operations completed")
	}
	iv := chaos.Invariants{Policy: res.Config.Policy}
	var vs []chaos.Violation
	vs = append(vs, iv.CheckLeaked(res.LeakedAfter)...)
	vs = append(vs, iv.CheckCounters(res.Reclaim)...)
	return chaos.Errs(vs)
}
