// Command popstress is the torture-test driver: it runs high-churn
// workloads with deliberately tiny reclamation thresholds (maximal
// ping/reclaim traffic), optional thread-delay injection, and verifies
// the reclamation invariants after every trial:
//
//   - a quiescent flush drains every retire list (except NR, which leaks
//     by design);
//   - allocation and free counters balance with the structure's final
//     population;
//   - robust policies made reclamation progress despite delays.
//
// A use-after-free in any scheme surfaces here as a double-free panic,
// an arena sequence panic, or an invariant failure. Exit status 0 means
// every trial passed.
//
// Usage:
//
//	popstress                          # full matrix, quick
//	popstress -duration 2s -threads 8  # heavier
//	popstress -ds hml -policy EpochPOP -stall
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pop/internal/core"
	"pop/internal/harness"
	"pop/internal/workload"
)

func main() {
	var (
		dsFlag     = flag.String("ds", "", "single data structure (default: all)")
		policyFlag = flag.String("policy", "", "single policy (default: all)")
		threads    = flag.Int("threads", 4, "worker threads per trial")
		duration   = flag.Duration("duration", 300*time.Millisecond, "per-trial duration")
		keyRange   = flag.Int64("keys", 1024, "key range")
		stall      = flag.Bool("stall", false, "inject a periodically delayed thread")
		seed       = flag.Uint64("seed", uint64(time.Now().UnixNano()), "trial seed")
	)
	flag.Parse()

	structures := harness.DSNames()
	if *dsFlag != "" {
		structures = []string{*dsFlag}
	}
	policies := core.Policies()
	if *policyFlag != "" {
		p, err := core.ParsePolicy(*policyFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "popstress: %v\n", err)
			os.Exit(2)
		}
		policies = []core.Policy{p}
	}

	failures := 0
	for _, dsName := range structures {
		for _, p := range policies {
			cfg := harness.Config{
				DS:               dsName,
				Policy:           p,
				Threads:          *threads,
				Duration:         *duration,
				KeyRange:         *keyRange,
				Mix:              workload.UpdateHeavy,
				ReclaimThreshold: 48, // tiny: constant reclamation pressure
				EpochFreq:        8,
				BatchSize:        8,
				Seed:             *seed,
			}
			if *stall {
				cfg.StallEvery = 2 * time.Millisecond
				cfg.StallLength = *duration / 5
			}
			res, err := harness.Run(cfg)
			if err != nil {
				fmt.Printf("FAIL %-5s %-13v run error: %v\n", dsName, p, err)
				failures++
				continue
			}
			if msg := check(res); msg != "" {
				fmt.Printf("FAIL %-5s %-13v %s\n", dsName, p, msg)
				failures++
				continue
			}
			fmt.Printf("ok   %-5s %-13v ops=%-9d retires=%-8d frees=%-8d pings=%-6d maxRetire=%d\n",
				dsName, p, res.Ops, res.Reclaim.Retires, res.Reclaim.Frees,
				res.Reclaim.PingsSent, res.MaxRetire)
		}
	}
	if failures > 0 {
		fmt.Printf("popstress: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("popstress: all trials passed")
}

// check validates post-trial invariants.
func check(res harness.Result) string {
	p := res.Config.Policy
	if res.Ops == 0 {
		return "zero operations completed"
	}
	if p == core.NR {
		if res.Reclaim.Frees != 0 {
			return fmt.Sprintf("NR freed %d nodes", res.Reclaim.Frees)
		}
		return ""
	}
	if res.LeakedAfter != 0 {
		return fmt.Sprintf("%d nodes unreclaimed after quiescent flush", res.LeakedAfter)
	}
	if res.Reclaim.Retires > 1000 && res.Reclaim.Frees == 0 {
		return fmt.Sprintf("no frees despite %d retires", res.Reclaim.Retires)
	}
	if res.Reclaim.Frees > res.Reclaim.Retires {
		return fmt.Sprintf("frees (%d) exceed retires (%d)", res.Reclaim.Frees, res.Reclaim.Retires)
	}
	return ""
}
