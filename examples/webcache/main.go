// Web-cache scenario: the store layer as a page cache under skewed
// traffic.
//
// Four serving goroutines answer requests for "pages" whose popularity
// is Zipfian (a few pages absorb most hits, the classic web shape).
// A miss renders the page (here: synthesizes a payload) and fills the
// cache; a periodic invalidation storm overwrites the hottest pages —
// and every overwrite retires the replaced payload through the
// domain's reclamation policy, so cache churn is reclamation churn.
// Page loads that need several assets fetch them with one batched
// multi-get (one protected operation per shard), and a background
// "warmer" iterates the whole cache with a value-returning scan.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pop"
)

const (
	workers  = 4
	pages    = 4096
	requests = 40_000 // per worker
	assets   = 8      // per composite page load
)

func pageKey(i uint64) string { return fmt.Sprintf("page:%05d", i%pages) }

func render(key string, version uint64) []byte {
	return []byte(fmt.Sprintf("<html><!-- %s v%d -->%s</html>", key, version, key))
}

func main() {
	domain := pop.NewDomain(pop.EpochPOP, workers+1, &pop.Options{
		ReclaimThreshold: 2048,
	})
	cache, err := pop.NewStore(domain, &pop.StoreOptions{Shards: 8})
	if err != nil {
		panic(err)
	}

	threads := make([]*pop.Thread, workers+1)
	for i := range threads {
		threads[i] = domain.RegisterThread()
	}

	var hits, misses, invalidations atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, t *pop.Thread) {
			defer wg.Done()
			// Zipf-ish skew via repeated halving: rank r served with
			// probability ~2^-r over buckets of the page space.
			state := uint64(id)*0x9e3779b97f4a7c15 + 12345
			next := func() uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state >> 11
			}
			skewed := func() uint64 {
				span := uint64(pages)
				for next()%2 == 0 && span > 8 {
					span /= 2 // hotter half
				}
				return next() % span
			}
			var buf []byte
			var batch pop.StoreBatch
			keys := make([]string, assets)
			for i := 0; i < requests; i++ {
				switch next() % 16 {
				case 0: // invalidation: overwrite a hot page (value retires)
					k := pageKey(skewed() % 64)
					cache.Put(t, k, render(k, uint64(i)))
					invalidations.Add(1)
				case 1: // composite page: batch-fetch its assets
					for a := range keys {
						keys[a] = pageKey(skewed() + uint64(a))
					}
					cache.GetBatch(t, keys, &batch)
					for a := range keys {
						if batch.OK[a] {
							hits.Add(1)
						} else {
							misses.Add(1)
							cache.Put(t, keys[a], render(keys[a], 0))
						}
					}
				default: // plain page hit
					k := pageKey(skewed())
					var ok bool
					if buf, ok = cache.Get(t, k, buf); ok {
						hits.Add(1)
					} else {
						misses.Add(1)
						cache.Put(t, k, render(k, 0))
					}
				}
			}
		}(w, threads[w])
	}

	// Cache warmer: a value-returning scan across the whole hashed key
	// space, chunked into bounded protected operations internally.
	warmer := threads[workers]
	wg.Add(1)
	var warmed atomic.Uint64
	go func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			// Let the serving side make progress between sweeps (and
			// before the first one, so there is something to warm).
			target := uint64(round+1) * workers * requests / 5
			for hits.Load()+misses.Load() < target {
				runtime.Gosched()
			}
			cache.Scan(warmer, -1<<63+1, 1<<63-2, func(_ int64, v []byte) bool {
				warmed.Add(uint64(len(v)))
				return true
			})
		}
	}()
	wg.Wait()

	for _, t := range threads {
		t.Flush()
	}
	st := cache.Stats()
	ds := domain.Stats()
	total := hits.Load() + misses.Load()
	fmt.Printf("served %d lookups: %.1f%% hit rate (%d invalidation overwrites)\n",
		total, 100*float64(hits.Load())/float64(total), invalidations.Load())
	fmt.Printf("store: %d entries, %d batches, %d scans (%d pairs, %d bytes warmed), %d stale-read retries\n",
		cache.Size(threads[0]), st.Batches, st.Scans, st.ScanPairs, warmed.Load(), st.StaleReads)
	fmt.Printf("values: %d allocated, %d freed, %d live\n",
		st.Values.Allocs, st.Values.Frees, st.Values.Outstanding)
	fmt.Printf("reclamation: %d retires (nodes+values), %d frees, %d pings\n",
		ds.Retires, ds.Frees, ds.PingsSent)
}
