// Web-cache scenario: the store layer as a page cache under skewed
// traffic, with a serving pool that resizes live.
//
// Serving goroutines answer requests for "pages" whose popularity is
// Zipfian (a few pages absorb most hits, the classic web shape). A
// miss renders the page (here: synthesizes a payload) and fills the
// cache; a periodic invalidation storm overwrites the hottest pages —
// and every overwrite retires the replaced payload through the
// domain's reclamation policy, so cache churn is reclamation churn.
// Page loads that need several assets fetch them with one batched
// multi-get (one protected operation per shard), and a background
// "warmer" iterates the whole cache with a value-returning scan.
//
// The pool scales while the cache stays loaded: traffic arrives in
// three waves (2 → 6 → 2 workers), and every worker leases its group
// handle from the store's domain group (Store.Acquire / Release) only
// for its wave — departing workers donate any unreclaimed retires to
// the member domains for adoption, and scale-up re-leases the same
// slots. The cache's 8 shards split across 2 member domains, so a
// reclamation pass pings only the workers that actually touched its
// member's shards. The final lifecycle line shows the turnover: more
// acquires than slots, peak leases well under the total worker count.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pop"
)

const (
	maxWorkers = 6 // serving-pool capacity (wave 2's width)
	pages      = 4096
	requests   = 20_000 // per worker per wave
	assets     = 8      // per composite page load
)

func pageKey(i uint64) string { return fmt.Sprintf("page:%05d", i%pages) }

func render(key string, version uint64) []byte {
	return []byte(fmt.Sprintf("<html><!-- %s v%d -->%s</html>", key, version, key))
}

// serve answers one worker's worth of requests, leasing a group
// handle from the cache's domain group for exactly this worker's
// lifetime.
func serve(cache *pop.Store, id int, hits, misses, invalidations *atomic.Uint64) {
	h, err := cache.Acquire()
	if err != nil {
		panic(err) // group sized for the peak wave; cannot happen
	}
	defer cache.Release(h)

	// Zipf-ish skew via repeated halving: rank r served with
	// probability ~2^-r over buckets of the page space.
	state := uint64(id)*0x9e3779b97f4a7c15 + 12345
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	skewed := func() uint64 {
		span := uint64(pages)
		for next()%2 == 0 && span > 8 {
			span /= 2 // hotter half
		}
		return next() % span
	}
	var buf []byte
	var batch pop.StoreBatch
	keys := make([]string, assets)
	for i := 0; i < requests; i++ {
		switch next() % 16 {
		case 0: // invalidation: overwrite a hot page (value retires)
			k := pageKey(skewed() % 64)
			cache.Put(h, k, render(k, uint64(i)))
			invalidations.Add(1)
		case 1: // composite page: batch-fetch its assets
			for a := range keys {
				keys[a] = pageKey(skewed() + uint64(a))
			}
			cache.GetBatch(h, keys, &batch)
			for a := range keys {
				if batch.OK[a] {
					hits.Add(1)
				} else {
					misses.Add(1)
					cache.Put(h, keys[a], render(keys[a], 0))
				}
			}
		default: // plain page hit
			k := pageKey(skewed())
			var ok bool
			if buf, ok = cache.Get(h, k, buf); ok {
				hits.Add(1)
			} else {
				misses.Add(1)
				cache.Put(h, k, render(k, 0))
			}
		}
	}
}

func main() {
	group := pop.NewDomainGroup(pop.EpochPOP, 2, maxWorkers+1, &pop.Options{
		ReclaimThreshold: 2048,
	})
	cache, err := pop.NewStore(group, &pop.StoreOptions{Shards: 8})
	if err != nil {
		panic(err)
	}

	var hits, misses, invalidations atomic.Uint64

	// Cache warmer: a long-lived thread running value-returning scans
	// across the whole hashed key space while the pool resizes around
	// it — its scan reservations must survive every lease turnover.
	warmer, err := cache.Acquire()
	if err != nil {
		panic(err)
	}
	var warmed atomic.Uint64
	warmerDone := make(chan struct{})
	stopWarmer := make(chan struct{})
	go func() {
		defer close(warmerDone)
		defer func() {
			warmer.Flush()
			cache.Release(warmer)
		}()
		for round := 0; ; round++ {
			// Let the serving side make progress between sweeps (and
			// before the first one, so there is something to warm).
			target := uint64(round+1) * 2 * requests / 5
			for hits.Load()+misses.Load() < target {
				select {
				case <-stopWarmer:
					return
				default:
					runtime.Gosched()
				}
			}
			cache.Scan(warmer, -1<<63+1, 1<<63-2, func(_ int64, v []byte) bool {
				warmed.Add(uint64(len(v)))
				return true
			})
		}
	}()

	// Three traffic waves against the same loaded cache: scale the
	// serving pool 2 → 6 → 2. Each wave's workers lease handles on
	// entry and release them on exit.
	for wave, workers := range []int{2, maxWorkers, 2} {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				serve(cache, wave*maxWorkers+id, &hits, &misses, &invalidations)
			}(w)
		}
		wg.Wait()
		lc := group.Lifecycle()
		fmt.Printf("wave %d (%d workers): %d slots leased now, peak %d, %d releases so far\n",
			wave+1, workers, lc.Leased, lc.Peak, lc.Releases)
	}
	close(stopWarmer)
	<-warmerDone

	// Final drain from a fresh lease: adopts whatever departed workers
	// donated.
	collector, err := cache.Acquire()
	if err != nil {
		panic(err)
	}
	collector.Flush()

	st := cache.Stats()
	ds := group.Stats()
	rs := group.ReclaimStats()
	lc := group.Lifecycle()
	total := hits.Load() + misses.Load()
	fmt.Printf("served %d lookups: %.1f%% hit rate (%d invalidation overwrites)\n",
		total, 100*float64(hits.Load())/float64(total), invalidations.Load())
	fmt.Printf("store: %d entries, %d batches, %d scans (%d pairs, %d bytes warmed), %d stale-read retries\n",
		cache.Size(collector), st.Batches, st.Scans, st.ScanPairs, warmed.Load(), st.StaleReads)
	fmt.Printf("values: %d allocated, %d freed, %d live\n",
		st.Values.Allocs, st.Values.Frees, st.Values.Outstanding)
	fmt.Printf("reclamation: %d retires (nodes+values), %d frees, %d pings (%.1f threads scanned per pass across %d members)\n",
		ds.Retires, ds.Frees, ds.PingsSent, rs.ScannedPerPass, group.Members())
	fmt.Printf("lifecycle: %d slots served %d leases (peak %d concurrent), %d orphan nodes donated, %d adopted\n",
		lc.Slots, lc.Releases+uint64(lc.Leased), lc.Peak, lc.OrphansDonated, lc.OrphansAdopted)
	cache.Release(collector)
}
