// Long-running reads: the paper's §5.1.2 scenario as a standalone demo.
//
// Half the workers scan a large Harris-Michael list end to end (an
// OLTP-style long read); the other half churn updates near the head with
// a small retire threshold, so reclamation events are constant. Under
// NBR every reclamation neutralizes the scanners and restarts their
// traversals from the entry point — their completion rate collapses.
// Under HazardPtrPOP a reclamation only asks the scanners to publish
// their reservations; the scans keep their position.
//
//	go run ./examples/longreads
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pop"
)

const (
	listSize  = 400_000
	runFor    = 1500 * time.Millisecond
	threshold = 64 // small: reclamation events arrive faster than a scan finishes
)

func main() {
	fmt.Printf("list size %d, %v per policy, retire threshold %d\n\n",
		listSize, runFor, threshold)
	fmt.Printf("%-14s %14s %14s %12s\n", "policy", "scans done", "updates done", "restarts")
	for _, p := range []pop.Policy{pop.NR, pop.EBR, pop.NBR, pop.HazardPtrPOP, pop.EpochPOP} {
		scans, updates, restarts := run(p)
		fmt.Printf("%-14v %14d %14d %12d\n", p, scans, updates, restarts)
	}
	fmt.Println("\nNBR's restarts crush scan completion; the POP schemes never restart.")
}

func run(p pop.Policy) (scans, updates uint64, restarts uint64) {
	const scanners, updaters = 1, 3
	d := pop.NewDomain(p, scanners+updaters, &pop.Options{ReclaimThreshold: threshold})
	list := pop.NewHarrisMichaelList(d)

	seedThread := d.RegisterThread()
	// Seed in descending order: each insert lands just after the head, so
	// building the sorted list is O(n) instead of O(n^2).
	for k := int64(listSize - 1); k >= 0; k-- {
		list.Insert(seedThread, k*2) // even keys: scans probe the far end
	}

	var stop atomic.Bool
	var scanCount, updateCount atomic.Uint64
	var wg sync.WaitGroup

	// Scanners: each "scan" is a probe of the last key, i.e. a traversal
	// of the entire list.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := seedThread
		for !stop.Load() {
			list.Contains(t, (listSize-1)*2)
			scanCount.Add(1)
		}
	}()
	for i := 1; i < scanners; i++ {
		t := d.RegisterThread()
		wg.Add(1)
		go func(t *pop.Thread) {
			defer wg.Done()
			for !stop.Load() {
				list.Contains(t, (listSize-1)*2)
				scanCount.Add(1)
			}
		}(t)
	}

	// Updaters: insert/delete odd keys near the head.
	for i := 0; i < updaters; i++ {
		t := d.RegisterThread()
		wg.Add(1)
		go func(t *pop.Thread, i int) {
			defer wg.Done()
			k := int64(2*i + 1)
			for !stop.Load() {
				list.Insert(t, k)
				list.Delete(t, k)
				updateCount.Add(2)
			}
		}(t, i)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	return scanCount.Load(), updateCount.Load(), d.Stats().Restarts
}
