// Quickstart: the smallest complete publish-on-ping program.
//
// It builds a hash table reclaimed by EpochPOP (the paper's recommended
// default: epoch-based speed with hazard-pointer robustness), runs a few
// concurrent workers, and prints the reclamation counters that show the
// scheme at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"pop"
)

func main() {
	const workers = 4

	// One domain per data structure. The second argument is the maximum
	// number of threads that will ever register.
	domain := pop.NewDomain(pop.EpochPOP, workers, &pop.Options{
		ReclaimThreshold: 1024, // retire-list length that triggers reclamation
	})
	set := pop.NewHashTable(domain, 100_000, 6)

	// Register one Thread per goroutine up front; a Thread must only be
	// used by the goroutine that owns it.
	threads := make([]*pop.Thread, workers)
	for i := range threads {
		threads[i] = domain.RegisterThread()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, t *pop.Thread) {
			defer wg.Done()
			base := int64(w) * 1_000_000
			// Insert, query and delete a private key range; the deletes
			// feed retired nodes to the reclamation scheme.
			for k := base; k < base+25_000; k++ {
				set.Insert(t, k)
			}
			hits := 0
			for k := base; k < base+25_000; k++ {
				if set.Contains(t, k) {
					hits++
				}
			}
			for k := base; k < base+25_000; k++ {
				set.Delete(t, k)
			}
			fmt.Printf("worker %d: %d/25000 lookups hit\n", w, hits)
		}(w, threads[w])
	}
	wg.Wait()

	// Drain the retire lists now that everyone is quiescent.
	for _, t := range threads {
		t.Flush()
	}

	fmt.Printf("\nfinal size:        %d keys\n", set.Size(threads[0]))
	fmt.Printf("outstanding nodes: %d (allocs - frees)\n", set.Outstanding())
	st := domain.Stats()
	fmt.Printf("retired: %d  freed: %d  epoch reclaims: %d  pop escalations: %d  pings: %d\n",
		st.Retires, st.Frees, st.EpochReclaims, st.POPReclaims, st.PingsSent)
}
