// KV quickstart: the same data served at two layers of the stack.
//
// Layer 1 is the raw map contract — int64 keys, uint64 values — on a
// skiplist ordered map: the paper's benchmark dialect with values
// added. Layer 2 is the serving front built on top of maps like it:
// pop.NewStore shards string keys over skiplists, keeps byte-slice
// payloads in a value arena, and retires replaced payloads through the
// same reclamation policy as the nodes. Both layers run here, on the
// same EpochPOP domain shape, so the APIs stay documented side by side
// by running code.
//
// The interesting part is invisible: on the skiplist every overwrite
// replaces the node and retires the old one, and in the store every
// overwrite additionally retires the old *value* — so the churn below
// keeps the reclamation scheme busy even though the key population
// barely changes. The printed counters show it.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"pop"
)

func main() {
	// ----- Layer 1: the raw int64→uint64 map ------------------------
	const (
		workers  = 4
		keys     = 10_000
		opsEach  = 50_000
		hotRange = 512 // overwrites concentrate here: maximal node churn
	)

	domain := pop.NewDomain(pop.EpochPOP, workers, &pop.Options{
		ReclaimThreshold: 1024,
	})
	kv := pop.NewSkipListMap(domain)

	threads := make([]*pop.Thread, workers)
	for i := range threads {
		threads[i] = domain.RegisterThread()
	}

	version := func(k int64, v uint64) uint64 { return uint64(k)<<20 | v }
	for k := int64(0); k < keys; k++ {
		kv.Put(threads[0], k, version(k, 0))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, t *pop.Thread) {
			defer wg.Done()
			state := uint64(id)*2862933555777941757 + 3037000493
			next := func(n uint64) uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state % n
			}
			for i := 0; i < opsEach; i++ {
				switch k := int64(next(keys)); next(10) {
				case 0, 1, 2: // overwrite a hot key: replace-node + retire
					hot := k % hotRange
					kv.Put(t, hot, version(hot, uint64(i)))
				case 3:
					kv.PutIfAbsent(t, k, version(k, 0))
				case 4:
					kv.Delete(t, k)
				default:
					kv.Get(t, k)
				}
			}
		}(w, threads[w])
	}
	wg.Wait()

	t := threads[0]
	window := kv.RangeCollect(t, 100, 119, nil)
	fmt.Printf("map: keys in [100,119]: %d, size %d, outstanding nodes %d\n",
		len(window), kv.Size(t), kv.Outstanding())

	// ----- Layer 2: the string-key serving front --------------------
	// Same policy, same reclamation counters — but string keys, byte
	// values, batches and value-returning scans. The store rides a
	// domain *group*: 2 member domains split the 4 shards, and a leased
	// group handle only registers with a member once an op touches one
	// of its shards — so reclamation pings fan out per member, not
	// across every serving goroutine.
	group := pop.NewDomainGroup(pop.EpochPOP, 2, workers, &pop.Options{
		ReclaimThreshold: 1024,
	})
	store, err := pop.NewStore(group, &pop.StoreOptions{Shards: 4})
	if err != nil {
		panic(err)
	}
	h, err := store.Acquire()
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		store.Put(h, key, []byte(fmt.Sprintf("profile-v0-of-%s", key)))
	}
	// Overwrite a hot subset: each hit retires a node AND a value slot.
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("user:%04d", i%100)
		store.Put(h, key, []byte(fmt.Sprintf("profile-v%d-of-%s", i, key)))
	}
	if v, ok := store.Get(h, "user:0042", nil); ok {
		fmt.Printf("store: user:0042 -> %q\n", v)
	}
	// Batched multi-get: one protected operation per shard per batch.
	var batch pop.StoreBatch
	reqs := []string{"user:0001", "user:0500", "user:9999", "user:0042"}
	store.GetBatch(h, reqs, &batch)
	hits := 0
	for i := range reqs {
		if batch.OK[i] {
			hits++
		}
	}
	fmt.Printf("store: batch of %d -> %d hits\n", len(reqs), hits)
	// Batched multi-put: one protected operation and one arena publish
	// sequence per shard group.
	mput := []string{"user:0001", "user:0042", "user:2000"}
	vals := [][]byte{[]byte("bulk-a"), []byte("bulk-b"), []byte("bulk-c")}
	store.PutBatch(h, mput, vals, &batch)
	fmt.Printf("store: mput of %d (replaced %v %v %v)\n",
		len(mput), batch.OK[0], batch.OK[1], batch.OK[2])
	// Value-returning scan over the hashed key space.
	pairs := 0
	store.Scan(h, -1<<62, 1<<62, func(int64, []byte) bool { pairs++; return true })
	fmt.Printf("store: scanned %d of %d pairs in the middle half of the hash space\n",
		pairs, store.Size(h))

	for _, th := range threads {
		th.Flush()
	}
	h.Flush()
	store.Release(h)
	st := store.Stats()
	stats := domain.Stats()
	gstats := group.Stats()
	rs := group.ReclaimStats()
	fmt.Printf("store: %d puts (%d overwrites -> value retirements), %d batched puts, %d stale-read retries\n",
		st.Puts, st.Overwrites, st.PutBatches, st.StaleReads)
	fmt.Printf("domain: retired %d nodes, freed %d, pings %d\n",
		stats.Retires, stats.Frees, stats.PingsSent)
	fmt.Printf("group:  retired %d nodes+values across %d members, freed %d, %.1f threads scanned per pass\n",
		gstats.Retires, group.Members(), gstats.Frees, rs.ScannedPerPass)
}
