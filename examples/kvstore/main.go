// KV quickstart: the map contract on an ordered structure.
//
// Every structure in this library is a key→value map (int64 → uint64)
// with last-writer-wins overwrite; this example runs a small KV-serving
// workload — concurrent gets, puts, overwrites and deletes — on a
// skiplist ordered map under EpochPOP, then uses a range scan to walk a
// key window and read its values. The interesting part is invisible:
// on the skiplist every overwrite replaces the node and retires the old
// one, so the value churn below keeps the reclamation scheme busy even
// though the key population barely changes. The printed counters show
// it.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"pop"
)

func main() {
	const (
		workers  = 4
		keys     = 10_000
		opsEach  = 100_000
		hotRange = 512 // overwrites concentrate here: maximal node churn
	)

	domain := pop.NewDomain(pop.EpochPOP, workers, &pop.Options{
		ReclaimThreshold: 1024,
	})
	kv := pop.NewSkipListMap(domain)

	threads := make([]*pop.Thread, workers)
	for i := range threads {
		threads[i] = domain.RegisterThread()
	}

	// Seed the store: key k holds version 0 of its value.
	version := func(k int64, v uint64) uint64 { return uint64(k)<<20 | v }
	for k := int64(0); k < keys; k++ {
		kv.Put(threads[0], k, version(k, 0))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, t *pop.Thread) {
			defer wg.Done()
			state := uint64(id)*2862933555777941757 + 3037000493
			next := func(n uint64) uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state % n
			}
			for i := 0; i < opsEach; i++ {
				switch k := int64(next(keys)); next(10) {
				case 0, 1, 2: // overwrite a hot key: replace-node + retire
					hot := k % hotRange
					kv.Put(t, hot, version(hot, uint64(i)))
				case 3: // insert-if-absent keeps cold keys at version 0
					kv.PutIfAbsent(t, k, version(k, 0))
				case 4: // delete: the key stays gone until case 3 re-seeds it
					kv.Delete(t, k)
				default: // serve a read
					kv.Get(t, k)
				}
			}
		}(w, threads[w])
	}
	wg.Wait()

	// Ordered-map bonus: walk a window and read the surviving values.
	t := threads[0]
	window := kv.RangeCollect(t, 100, 119, nil)
	fmt.Printf("keys in [100,119]: %d\n", len(window))
	for _, k := range window[:min(3, len(window))] {
		v, _ := kv.Get(t, k)
		fmt.Printf("  kv[%d] = key %d, version %d\n", k, v>>20, v&(1<<20-1))
	}

	for _, th := range threads {
		th.Flush()
	}
	stats := domain.Stats()
	fmt.Printf("size %d, outstanding nodes %d\n", kv.Size(t), kv.Outstanding())
	fmt.Printf("retired %d nodes (every overwrite retires one), freed %d, pings %d\n",
		stats.Retires, stats.Frees, stats.PingsSent)
}
