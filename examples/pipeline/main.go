// Pipeline: a producer/consumer workload over the lock-free queue.
//
// This is the workload shape hazard pointers were originally designed
// for (Michael's queue): every dequeue retires a node, so reclamation
// runs constantly, and every dequeuer holds exactly two reservations
// (head and its successor). It demonstrates that the POP schemes slot
// into non-set structures unchanged, and it prints the throughput and
// reclamation profile for classic HP versus HazardPtrPOP versus EpochPOP
// — the same comparison the paper makes for sets.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pop"
)

const (
	producers = 2
	consumers = 2
	runFor    = time.Second
)

func main() {
	fmt.Printf("%d producers, %d consumers, %v per policy\n\n", producers, consumers, runFor)
	fmt.Printf("%-14s %12s %12s %12s %10s\n", "policy", "items", "retired", "freed", "pings")
	for _, p := range []pop.Policy{pop.HP, pop.HPAsym, pop.HazardPtrPOP, pop.EpochPOP} {
		items, st := run(p)
		fmt.Printf("%-14v %12d %12d %12d %10d\n", p, items, st.Retires, st.Frees, st.PingsSent)
	}
}

func run(p pop.Policy) (uint64, pop.Stats) {
	d := pop.NewDomain(p, producers+consumers, &pop.Options{ReclaimThreshold: 8192})
	q := pop.NewQueue(d)

	var stop atomic.Bool
	var delivered atomic.Uint64
	var wg sync.WaitGroup

	for i := 0; i < producers; i++ {
		t := d.RegisterThread()
		wg.Add(1)
		go func(t *pop.Thread, id int) {
			defer wg.Done()
			for k := int64(0); !stop.Load(); k++ {
				q.Enqueue(t, int64(id)<<32|k)
			}
		}(t, i)
	}
	for i := 0; i < consumers; i++ {
		t := d.RegisterThread()
		wg.Add(1)
		go func(t *pop.Thread) {
			defer wg.Done()
			for !stop.Load() {
				if _, ok := q.Dequeue(t); ok {
					delivered.Add(1)
				}
			}
		}(t)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	return delivered.Load(), d.Stats()
}
