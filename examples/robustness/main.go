// Robustness: what happens to memory when one thread is delayed.
//
// One worker repeatedly parks inside an operation (still running —
// answering pings — but never finishing, like a thread preempted by
// other work). The remaining workers churn a list. Under EBR the parked
// worker pins the minimum epoch, so *nothing* can be reclaimed and
// garbage grows without bound — the paper's motivating failure. Under
// EpochPOP the reclaimers notice the stuck epoch, ping everyone, learn
// the parked worker's (tiny) reservation set, and keep freeing around
// it: garbage stays bounded.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pop"
)

const (
	churners  = 3
	runFor    = 2 * time.Second
	sampleDt  = 250 * time.Millisecond
	threshold = 256
)

func main() {
	fmt.Printf("one delayed thread + %d churners, sampling garbage every %v\n\n",
		churners, sampleDt)
	for _, p := range []pop.Policy{pop.EBR, pop.HazardPtrPOP, pop.EpochPOP} {
		fmt.Printf("%v:\n", p)
		run(p)
		fmt.Println()
	}
}

func run(p pop.Policy) {
	d := pop.NewDomain(p, churners+1, &pop.Options{ReclaimThreshold: threshold})
	list := pop.NewLazyList(d)

	var stop atomic.Bool
	var wg sync.WaitGroup

	// The delayed thread: enters an operation and stays there, polling.
	// (With real POSIX signals the poll would be implicit; see the core
	// package docs for the substitution.)
	stalled := d.RegisterThread()
	wg.Add(1)
	go func() {
		defer wg.Done()
		list.Insert(stalled, -1)
		stalled.StartOp() // park inside an operation: epoch pinned
		for !stop.Load() {
			stalled.Poll()
		}
		stalled.EndOp()
	}()

	for i := 0; i < churners; i++ {
		t := d.RegisterThread()
		wg.Add(1)
		go func(t *pop.Thread, i int) {
			defer wg.Done()
			base := int64(i) * 1_000_000
			for k := base; !stop.Load(); k++ {
				list.Insert(t, base+k%512)
				list.Delete(t, base+k%512)
			}
		}(t, i)
	}

	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		time.Sleep(sampleDt)
		fmt.Printf("  garbage: %8d unreclaimed nodes (outstanding %d)\n",
			d.Unreclaimed(), list.Outstanding())
	}
	stop.Store(true)
	wg.Wait()
}
