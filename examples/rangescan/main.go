// Rangescan: ordered range queries on both range-capable structures —
// the lock-free skiplist and the (a,b)-tree — while writers churn the
// structures underneath them.
//
// Three writers per structure insert and delete odd keys; the main
// goroutine keeps scanning a window with pop.RangeSet. Every scan is
// one long operation — its reservations stay live across every hop —
// so this is the smallest demonstration of the workload regime the
// paper's §5.1.2 long-running-reads experiment probes: cheap
// reservation publication (here EpochPOP) keeps reclamation flowing
// while scans are in flight. The two structures protect their scans in
// opposite ways (per-node reservation chains vs whole leaves), yet
// both must deliver the same guarantee: every permanently present key
// in the window, in order, every time.
//
//	go run ./examples/rangescan
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pop"
)

func main() {
	const (
		writers  = 3
		keySpace = 100_000
	)
	structures := []struct {
		name string
		mk   func(d *pop.Domain) pop.RangeSet
	}{
		{"skiplist (per-node reservations)", pop.NewSkipList},
		{"abtree   (whole-leaf reservations)", pop.NewABTree},
	}
	for _, s := range structures {
		domain := pop.NewDomain(pop.EpochPOP, writers+1, &pop.Options{ReclaimThreshold: 1024})
		set := s.mk(domain)

		scanThread := domain.RegisterThread()
		// Even keys are permanent; the writers churn odd keys around them.
		for k := int64(0); k < keySpace; k += 2 {
			set.Insert(scanThread, k)
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			th := domain.RegisterThread()
			wg.Add(1)
			go func(w int, th *pop.Thread) {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					// Consecutive iterations pair up: insert a key, then
					// delete that same key — every pair retires nodes.
					k := int64(((i/2)*2654435761+w*997)%(keySpace/2))*2 + 1
					if i%2 == 0 {
						set.Insert(th, k)
					} else {
						set.Delete(th, k)
					}
				}
			}(w, th)
		}

		var scans, keys int
		var buf []int64
		for scans = 0; scans < 2000; scans++ {
			lo := int64(scans*61) % (keySpace - 1000)
			buf = set.RangeCollect(scanThread, lo, lo+999, buf)
			keys += len(buf)
			// Every scan must see all 500 permanent even keys in its
			// window, in order, whatever the writers are doing.
			even := 0
			for _, k := range buf {
				if k%2 == 0 {
					even++
				}
			}
			if even != 500 {
				panic(fmt.Sprintf("%s: scan %d saw %d permanent keys, want 500", s.name, scans, even))
			}
		}
		stop.Store(true)
		wg.Wait()

		st := domain.Stats()
		fmt.Printf("%s: %d scans under churn, %d keys returned (avg %.1f/scan)\n",
			s.name, scans, keys, float64(keys)/float64(scans))
		fmt.Printf("  every scan saw all 500 permanent keys in its window, in order\n")
		fmt.Printf("  retired: %d  freed: %d  epoch reclaims: %d  pop escalations: %d\n",
			st.Retires, st.Frees, st.EpochReclaims, st.POPReclaims)
	}
}
