package pop_test

import (
	"sync"
	"testing"

	"pop"
)

// TestFacadeAllStructuresAllPolicies exercises the public API surface:
// every constructor under every policy, with a small concurrent workload.
func TestFacadeAllStructuresAllPolicies(t *testing.T) {
	constructors := map[string]func(d *pop.Domain) pop.Set{
		"HarrisMichaelList": pop.NewHarrisMichaelList,
		"LazyList":          pop.NewLazyList,
		"HashTable":         func(d *pop.Domain) pop.Set { return pop.NewHashTable(d, 1024, 6) },
		"ExternalBST":       pop.NewExternalBST,
		"ABTree":            func(d *pop.Domain) pop.Set { return pop.NewABTree(d) },
		"SkipList":          func(d *pop.Domain) pop.Set { return pop.NewSkipList(d) },
	}
	for name, mk := range constructors {
		for _, p := range pop.Policies() {
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				const workers = 3
				d := pop.NewDomain(p, workers, &pop.Options{ReclaimThreshold: 64})
				set := mk(d)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					th := d.RegisterThread()
					wg.Add(1)
					go func(w int, th *pop.Thread) {
						defer wg.Done()
						base := int64(w * 10_000)
						for k := base; k < base+300; k++ {
							if !set.Insert(th, k) {
								t.Errorf("insert %d failed", k)
								return
							}
						}
						for k := base; k < base+300; k += 2 {
							if !set.Delete(th, k) {
								t.Errorf("delete %d failed", k)
								return
							}
						}
						for k := base; k < base+300; k++ {
							want := k%2 == 1
							if got := set.Contains(th, k); got != want {
								t.Errorf("Contains(%d) = %v, want %v", k, got, want)
								return
							}
						}
					}(w, th)
				}
				wg.Wait()
			})
		}
	}
}

// TestRangeSetFacade exercises the public RangeSet surface on both
// range-capable structures: scans concurrent with updates must stay
// sorted, unique and in-bounds, and a quiescent scan must match the set
// exactly.
func TestRangeSetFacade(t *testing.T) {
	rangeSets := map[string]func(d *pop.Domain) pop.RangeSet{
		"SkipList": pop.NewSkipList,
		"ABTree":   pop.NewABTree,
	}
	for name, mk := range rangeSets {
		for _, p := range []pop.Policy{pop.HazardPtrPOP, pop.EpochPOP, pop.EBR, pop.NBR} {
			mk, p := mk, p
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				const workers = 3
				d := pop.NewDomain(p, workers+1, &pop.Options{ReclaimThreshold: 64})
				set := mk(d)
				scanTh := d.RegisterThread()
				for k := int64(0); k < 1000; k += 2 {
					set.Insert(scanTh, k)
				}
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					th := d.RegisterThread()
					wg.Add(1)
					go func(w int, th *pop.Thread) {
						defer wg.Done()
						for i := 0; i < 4000; i++ {
							k := int64((i*31+w*7)%1000)*2 + 1 // odd keys only
							if i%2 == 0 {
								set.Insert(th, k)
							} else {
								set.Delete(th, k)
							}
						}
					}(w, th)
				}
				var buf []int64
				for i := 0; i < 50; i++ {
					buf = set.RangeCollect(scanTh, 100, 900, buf)
					even := 0
					for j, k := range buf {
						if k < 100 || k > 900 || (j > 0 && buf[j-1] >= k) {
							t.Fatalf("malformed scan: %v", buf)
						}
						if k%2 == 0 {
							even++
						}
					}
					if want := (900-100)/2 + 1; even != want {
						t.Fatalf("scan saw %d permanent even keys, want %d", even, want)
					}
				}
				wg.Wait()
				if got, want := set.RangeCount(scanTh, 0, 2000), set.Size(scanTh); got != want {
					t.Fatalf("quiescent RangeCount = %d, Size = %d", got, want)
				}
			})
		}
	}
}

func TestParsePolicyFacade(t *testing.T) {
	p, err := pop.ParsePolicy("EpochPOP")
	if err != nil || p != pop.EpochPOP {
		t.Fatalf("ParsePolicy(EpochPOP) = %v, %v", p, err)
	}
}

func TestOutstandingTracksLiveKeys(t *testing.T) {
	d := pop.NewDomain(pop.EBR, 1, &pop.Options{ReclaimThreshold: 16})
	set := pop.NewHarrisMichaelList(d)
	th := d.RegisterThread()
	for k := int64(0); k < 100; k++ {
		set.Insert(th, k)
	}
	if got := set.Outstanding(); got < 100 {
		t.Fatalf("Outstanding = %d, want >= 100", got)
	}
	if got := set.Size(th); got != 100 {
		t.Fatalf("Size = %d, want 100", got)
	}
}

// TestSharedDomainAcrossStructures runs a set and a queue in one
// reclamation domain (the documented multi-structure pattern): retires
// from both node types flow through the same reclaimer and must be freed
// to their respective pools.
func TestSharedDomainAcrossStructures(t *testing.T) {
	for _, p := range []pop.Policy{pop.HazardPtrPOP, pop.EpochPOP, pop.HE, pop.EBR} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			const workers = 3
			d := pop.NewDomain(p, workers, &pop.Options{ReclaimThreshold: 64})
			set := pop.NewHarrisMichaelList(d)
			q := pop.NewQueue(d)
			var wg sync.WaitGroup
			threads := make([]*pop.Thread, workers)
			for i := range threads {
				threads[i] = d.RegisterThread()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int, th *pop.Thread) {
					defer wg.Done()
					base := int64(w) * 100_000
					for i := int64(0); i < 2000; i++ {
						k := base + i%97
						set.Insert(th, k)
						q.Enqueue(th, k)
						set.Delete(th, k)
						q.Dequeue(th)
					}
				}(w, threads[w])
			}
			wg.Wait()
			for _, th := range threads {
				th.Flush()
			}
			if got := set.Outstanding() + q.Outstanding(); got > 100 {
				// Only currently-linked nodes (set leftovers + queue dummy)
				// may remain outstanding.
				t.Fatalf("outstanding after flush = %d", got)
			}
		})
	}
}

func TestStoreFacade(t *testing.T) {
	g := pop.NewDomainGroup(pop.EpochPOP, 2, 2, nil)
	s, err := pop.NewStore(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	s.Put(h, "facade:key", []byte("facade-value"))
	if v, ok := s.Get(h, "facade:key", nil); !ok || string(v) != "facade-value" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	var b pop.StoreBatch
	s.GetBatch(h, []string{"facade:key", "absent"}, &b)
	if !b.OK[0] || string(b.Vals[0]) != "facade-value" || b.OK[1] {
		t.Fatalf("GetBatch = %q/%v, %v", b.Vals[0], b.OK[0], b.OK[1])
	}
	s.PutBatch(h, []string{"facade:key", "facade:sibling"}, [][]byte{[]byte("v2"), []byte("v3")}, &b)
	if !b.OK[0] || b.OK[1] {
		t.Fatalf("PutBatch replaced = %v,%v, want true,false", b.OK[0], b.OK[1])
	}
	if v, ok := s.Get(h, "facade:key", nil); !ok || string(v) != "v2" {
		t.Fatalf("Get after PutBatch = %q, %v", v, ok)
	}
	pairs := 0
	s.Scan(h, -1<<63+1, 1<<63-2, func(int64, []byte) bool { pairs++; return true })
	if pairs != 2 {
		t.Fatalf("Scan visited %d pairs, want 2", pairs)
	}
	if !s.Delete(h, "facade:key") {
		t.Fatal("Delete failed")
	}
	// Puts counts per-key upserts (the single Put plus PutBatch's two);
	// PutBatches counts batch calls.
	if st := s.Stats(); st.Puts != 3 || st.Deletes != 1 || st.PutBatches != 1 || st.Overwrites != 1 {
		t.Fatalf("stats %+v", st)
	}
	h.Flush()
	s.Release(h)

	// Options plumb through (and invalid ones surface as errors).
	if _, err := pop.NewStore(g, &pop.StoreOptions{Backing: "nope"}); err == nil {
		t.Fatal("invalid backing accepted")
	}
}

// TestHandlePoolFacade exercises the exported thread-lifecycle surface:
// an elastic worker set over one map, handles leased and released
// through pop.Handles, with orphan adoption draining everything.
func TestHandlePoolFacade(t *testing.T) {
	d := pop.NewDomain(pop.EpochPOP, 4, &pop.Options{ReclaimThreshold: 64})
	kv := pop.NewSkipListMap(d)
	pool := pop.NewHandles(d)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ { // 8 workers over 4 slots, in two batches
		if w == 4 {
			wg.Wait() // first batch released its leases
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := pool.Do(func(th *pop.Thread) error {
				base := int64(id * 1000)
				for k := base; k < base+200; k++ {
					kv.Put(th, k, uint64(k))
					if k%2 == 0 {
						kv.Delete(th, k)
					}
				}
				return nil
			}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	collector, err := d.TryRegisterThread()
	if err != nil {
		t.Fatal(err)
	}
	collector.Flush()
	lc := d.Lifecycle()
	if lc.Releases != 8 {
		t.Fatalf("releases = %d, want 8", lc.Releases)
	}
	if lc.Slots > 4 {
		t.Fatalf("slots grew to %d despite the 4-slot cap", lc.Slots)
	}
	if lc.OrphanNodes != 0 {
		t.Fatalf("orphans left after flush: %+v", lc)
	}
	if got, want := kv.Outstanding(), int64(kv.Size(collector)); got != want {
		t.Fatalf("outstanding %d != live keys %d after elastic run", got, want)
	}
	collector.Release()
}
