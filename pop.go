// Package pop is the public API of the publish-on-ping safe-memory-
// reclamation library, a Go implementation of
//
//	Singh & Brown, "Publish on Ping: A Better Way to Publish
//	Reservations in Memory Reclamation for Concurrent Data
//	Structures", PPoPP 2025.
//
// It provides the paper's three algorithms — HazardPtrPOP, HazardEraPOP
// and EpochPOP — as drop-in replacements for hazard pointers, the eight
// baseline schemes the paper evaluates against, and six concurrent data
// structures integrated with them. Every structure is a key→value Map
// (int64 keys, uint64 values) with last-writer-wins overwrite; the two
// ordered structures — a lock-free skiplist and an (a,b)-tree — are
// OrderedMaps with range scans. Above the maps sits Store, a sharded
// string-key KV-serving front with arena-backed byte values, batched
// multi-get and value-returning scans. Key-only Set views of the same
// structures remain available for the paper's benchmarks. All of it is
// integrated with type-stable arenas so that "freeing" memory is
// meaningful inside a garbage-collected runtime.
//
// # KV quickstart
//
// Create a Domain with a Policy and a thread capacity, lease one
// Thread per worker goroutine, and pass the Thread to every operation:
//
//	d := pop.NewDomain(pop.EpochPOP, 8, nil)
//	kv := pop.NewSkipListMap(d)          // ordered map with range scans
//	t := d.RegisterThread()              // leased to this goroutine
//	kv.Put(t, 42, 1000)                  // insert
//	old, _ := kv.Put(t, 42, 2000)        // overwrite: old == 1000
//	v, ok := kv.Get(t, 42)               // v == 2000
//	removed, ok := kv.Delete(t, 42)      // removed == 2000
//	n := kv.RangeCount(t, 0, 99)         // ordered scan
//	t.Release()                          // slot becomes re-leasable
//
// # Thread lifecycle
//
// A Thread is a lease on one of the domain's slots, not a lifetime
// commitment: while held it must only be used by the goroutine that
// leased it, and Release (outside any operation) returns the slot —
// any unreclaimed retires are donated to the domain and adopted by
// live threads, and a different goroutine may then lease the same
// slot. Domain.TryRegisterThread is the error-returning lease (the
// panicking RegisterThread remains for compatibility), and Handles
// wraps the lifecycle in a concurrency-safe acquire/release pool for
// elastic worker sets:
//
//	pool := pop.NewHandles(d)
//	go func() {                          // a short-lived worker
//		t, err := pool.Acquire()
//		...
//		pool.Release(t)
//	}()
//
// Overwrites are a first-class reclamation event: on the lock-free
// structures (NewHarrisMichaelListMap, NewSkipListMap, and the hash
// table's buckets) a Put on a present key replaces the node and retires
// the old one, and on the (a,b)-tree it copy-on-writes the leaf — so
// value churn exercises the SMR layer even when the key set is static.
// See internal/ds's package doc for each structure's overwrite
// strategy.
//
// The key-only view is unchanged:
//
//	set := pop.NewHashTable(d, 1_000_000, 6)
//	set.Insert(t, 42)
//	set.Contains(t, 42)
//	set.Delete(t, 42)
//
// A Thread must only ever be used by the goroutine currently holding
// its lease. Domains are cheap; use one per data structure (or share
// one domain across structures that should reclaim together).
package pop

import (
	"pop/internal/core"
	"pop/internal/ds/abtree"
	"pop/internal/ds/extbst"
	"pop/internal/ds/hashtable"
	"pop/internal/ds/hmlist"
	"pop/internal/ds/lazylist"
	"pop/internal/ds/msqueue"
	"pop/internal/ds/skiplist"
	"pop/internal/store"
)

// Policy selects a reclamation algorithm (see the core package for the
// algorithms' documentation).
type Policy = core.Policy

// The available reclamation policies.
const (
	// NR performs no reclamation (leaky baseline).
	NR = core.NR
	// HP is Michael's hazard pointers (per-read fence).
	HP = core.HP
	// HPAsym is hazard pointers with asymmetric fences (Folly-style).
	HPAsym = core.HPAsym
	// HE is hazard eras.
	HE = core.HE
	// EBR is RCU-style epoch-based reclamation (fast, not robust).
	EBR = core.EBR
	// IBR is 2GE interval-based reclamation.
	IBR = core.IBR
	// NBR is neutralization-based reclamation (signal restarts).
	NBR = core.NBR
	// HazardPtrPOP is the paper's hazard pointers with publish-on-ping.
	HazardPtrPOP = core.HazardPtrPOP
	// HazardEraPOP is the paper's hazard eras with publish-on-ping.
	HazardEraPOP = core.HazardEraPOP
	// EpochPOP is the paper's dual-mode EBR + HazardPtrPOP algorithm.
	EpochPOP = core.EpochPOP
	// Crystalline is a simplified Crystalline-style batch reclaimer.
	Crystalline = core.Crystalline
)

// Domain is a reclamation domain: one policy plus the thread slots and
// node types registered with it. Thread slots are leasable —
// RegisterThread / TryRegisterThread lease, Thread.Release returns —
// so worker populations can resize inside the domain's capacity.
type Domain = core.Domain

// Thread is a per-goroutine handle used for every operation: a lease
// on one of the domain's slots, returned with Release.
type Thread = core.Thread

// Handles is a goroutine-affine acquire/release pool of Thread handles
// over a Domain — the lifecycle facade elastic serving pools use
// (Store exposes one per store as Store.Handles).
type Handles = core.Handles

// Options tunes a domain (retire-list threshold, epoch frequency, ...).
type Options = core.Options

// Stats aggregates reclamation counters.
type Stats = core.Stats

// LifecycleStats counts thread-slot lifecycle events: current/peak
// leases, releases, and orphan retire-list donation/adoption volumes
// (Domain.Lifecycle).
type LifecycleStats = core.LifecycleStats

// NewDomain creates a reclamation domain for at most maxThreads
// concurrent threads. opts may be nil for the paper's defaults.
func NewDomain(p Policy, maxThreads int, opts *Options) *Domain {
	return core.NewDomain(p, maxThreads, opts)
}

// NewHandles creates a handle pool over d (see Handles).
func NewHandles(d *Domain) *Handles { return core.NewHandles(d) }

// DomainGroup partitions one logical reclamation domain into several
// member Domains sharing a single lease facade. A goroutine leases one
// group slot (Acquire) and holds a GroupHandle whose per-member Thread
// handles are leased lazily on first touch, so a reclaimer's ping
// fan-out covers only the threads that actually operated in its member
// — O(readers-of-member), not O(total threads). Store shards map onto
// members; see NewStore.
type DomainGroup = core.DomainGroup

// GroupHandle is one goroutine's lease across a DomainGroup: a group
// slot plus lazily-leased member Threads (GroupHandle.Member).
type GroupHandle = core.GroupHandle

// ReclaimStats summarizes reclamation-pass fan-out: passes, pings
// issued and thread-list entries scanned, absolute and per pass.
type ReclaimStats = core.ReclaimStats

// NewDomainGroup creates a group of members domains (members must be a
// positive power of two) under policy p, each sized so that all
// maxThreads group slots can lease into it. opts may be nil for the
// paper's defaults.
func NewDomainGroup(p Policy, members, maxThreads int, opts *Options) *DomainGroup {
	return core.NewDomainGroup(p, members, maxThreads, opts)
}

// ParsePolicy resolves a policy name ("HazardPtrPOP", "EBR", ...).
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// Policies returns all policies in the paper's plot order.
func Policies() []Policy { return core.Policies() }

// Map is a concurrent map from int64 keys to uint64 values bound to a
// reclamation domain. Every constructor below returns a linearizable
// Map safe for concurrent use by threads registered with the same
// domain. Overwrites are last-writer-wins: Put's returned old value is
// exactly the value it replaced.
type Map interface {
	// Put maps key to val (inserting or overwriting) and returns the
	// previous value; replaced reports whether the key was present.
	Put(t *Thread, key int64, val uint64) (old uint64, replaced bool)
	// PutIfAbsent maps key to val only if key is absent and reports
	// whether it did (a present key keeps its value).
	PutIfAbsent(t *Thread, key int64, val uint64) bool
	// Get returns the value mapped to key.
	Get(t *Thread, key int64) (uint64, bool)
	// Delete removes key and returns the value it removed.
	Delete(t *Thread, key int64) (uint64, bool)
	// Size counts the keys (quiescent use only: no concurrent updates).
	Size(t *Thread) int
	// Outstanding reports live+retired node-pool occupancy (a memory
	// metric: allocations minus frees).
	Outstanding() int64
}

// OrderedMap is a Map over ordered keys that additionally supports
// range scans (see RangeSet for the scan semantics; scans report keys —
// use Get for the values).
type OrderedMap interface {
	Map
	// RangeCount counts the keys in [lo, hi].
	RangeCount(t *Thread, lo, hi int64) int
	// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0]
	// and returns the filled slice.
	RangeCollect(t *Thread, lo, hi int64, buf []int64) []int64
}

// NewHarrisMichaelListMap creates a lock-free sorted linked-list map
// (Michael 2004; "HML"). Overwrites replace the node and retire the old
// one.
func NewHarrisMichaelListMap(d *Domain) Map { return hmlist.New(d) }

// NewLazyListMap creates a lazy-list map (Heller et al. 2005; "LL").
// Overwrites store in place under the node's lock.
func NewLazyListMap(d *Domain) Map { return lazylist.New(d) }

// NewHashTableMap creates a fixed-size hash map with Harris-Michael-
// list buckets ("HMHT"), sized for expectedKeys at the given load
// factor (keys per bucket; the paper uses 6). Overwrites replace the
// bucket node and retire the old one.
func NewHashTableMap(d *Domain, expectedKeys int64, loadFactor int) Map {
	return hashtable.New(d, expectedKeys, loadFactor)
}

// NewExternalBSTMap creates a lock-based external binary search tree
// map (David, Guerraoui & Trigonakis 2015; "DGT"). Overwrites store in
// place under the parent's lock.
func NewExternalBSTMap(d *Domain) Map { return extbst.New(d) }

// NewSkipListMap creates a lock-free skiplist ordered map ("SKL") with
// range scans. Overwrites replace the node (tower and all) and retire
// the old one; see internal/ds/skiplist for the reclamation protocol.
func NewSkipListMap(d *Domain) OrderedMap { return skiplist.New(d) }

// NewABTreeMap creates a concurrent leaf-oriented (a,b)-tree ordered
// map (after Brown 2017; "ABT") with range scans. Overwrites
// copy-on-write the leaf and retire the old one.
func NewABTreeMap(d *Domain) OrderedMap { return abtree.New(d) }

// Set is the key-only view of a concurrent map: the contract the
// paper's benchmarks use. Every Set constructor below is a thin adapter
// over the corresponding Map constructor (inserted keys carry the zero
// value).
type Set interface {
	// Insert adds key and reports whether it was absent.
	Insert(t *Thread, key int64) bool
	// Delete removes key and reports whether it was present.
	Delete(t *Thread, key int64) bool
	// Contains reports whether key is present.
	Contains(t *Thread, key int64) bool
	// Size counts the keys (quiescent use only: no concurrent updates).
	Size(t *Thread) int
	// Outstanding reports live+retired node-pool occupancy (a memory
	// metric: allocations minus frees).
	Outstanding() int64
}

// setView adapts a Map to the key-only Set interface.
type setView struct{ m Map }

func (s setView) Insert(t *Thread, key int64) bool { return s.m.PutIfAbsent(t, key, 0) }
func (s setView) Delete(t *Thread, key int64) bool { _, ok := s.m.Delete(t, key); return ok }
func (s setView) Contains(t *Thread, key int64) bool {
	_, ok := s.m.Get(t, key)
	return ok
}
func (s setView) Size(t *Thread) int { return s.m.Size(t) }
func (s setView) Outstanding() int64 { return s.m.Outstanding() }

// NewHarrisMichaelList creates a lock-free sorted linked-list set
// (Michael 2004; "HML" in the paper).
func NewHarrisMichaelList(d *Domain) Set { return setView{hmlist.New(d)} }

// NewLazyList creates a lazy-list set (Heller et al. 2005; "LL").
func NewLazyList(d *Domain) Set { return setView{lazylist.New(d)} }

// NewHashTable creates a fixed-size hash set with Harris-Michael-list
// buckets ("HMHT"), sized for expectedKeys at the given load factor
// (keys per bucket; the paper uses 6).
func NewHashTable(d *Domain, expectedKeys int64, loadFactor int) Set {
	return setView{hashtable.New(d, expectedKeys, loadFactor)}
}

// NewExternalBST creates a lock-based external binary search tree
// (David, Guerraoui & Trigonakis 2015; "DGT").
func NewExternalBST(d *Domain) Set { return setView{extbst.New(d)} }

// RangeSet is a Set that additionally supports ordered range scans.
// Scans run concurrently with updates: results are sorted and
// duplicate-free, and every reported key was observed present at some
// point during the scan. A scan is one long operation — the calling
// thread's reservations stay live across every hop — so scan-heavy
// workloads are the strongest read-path pressure a reclamation policy
// can face in this library. Two structures implement it with opposite
// reservation shapes: the skiplist (NewSkipList) pins one reservation
// per node hopped, the (a,b)-tree (NewABTree) pins whole leaves.
type RangeSet interface {
	Set
	// RangeCount counts the keys in [lo, hi].
	RangeCount(t *Thread, lo, hi int64) int
	// RangeCollect appends the keys in [lo, hi], ascending, to buf[:0]
	// and returns the filled slice.
	RangeCollect(t *Thread, lo, hi int64, buf []int64) []int64
}

// rangeSetView adapts an OrderedMap to RangeSet.
type rangeSetView struct {
	setView
	om OrderedMap
}

func (r rangeSetView) RangeCount(t *Thread, lo, hi int64) int {
	return r.om.RangeCount(t, lo, hi)
}
func (r rangeSetView) RangeCollect(t *Thread, lo, hi int64, buf []int64) []int64 {
	return r.om.RangeCollect(t, lo, hi, buf)
}

// newRangeSet wraps an OrderedMap in the key-only RangeSet view.
func newRangeSet(om OrderedMap) RangeSet {
	return rangeSetView{setView: setView{om}, om: om}
}

// NewSkipList creates a lock-free skiplist set ("SKL") with range
// queries. Updates are Fraser/Herlihy style (per-level CAS marking);
// see internal/ds/skiplist for the reclamation protocol that keeps
// tower nodes safe under every policy.
func NewSkipList(d *Domain) RangeSet { return newRangeSet(skiplist.New(d)) }

// NewABTree creates a concurrent leaf-oriented (a,b)-tree (after Brown
// 2017; "ABT"). The tree is ordered and supports range scans: each scan
// hop protects a whole leaf (up to B keys per reservation set) rather
// than chaining per-node reservations the way the skiplist does.
func NewABTree(d *Domain) RangeSet { return newRangeSet(abtree.New(d)) }

// Store is the KV-serving front: a sharded map from string keys to
// byte-slice values, layered on the Map structures above. Keys hash to
// a shard plus an int64 in-shard key. Values at most StoreInlineMaxLen
// bytes are tag-encoded directly into the map word — Put allocates
// nothing and Get cannot read stale. Longer values live out of line in
// a size-class arena and retire through the same reclamation path as
// nodes, so an overwrite's replaced payload is freed exactly when the
// domain's policy says it is safe — and a reader that raced that
// reclamation detects it deterministically (the arena's sequence
// discipline) and retries, never observing torn or recycled bytes.
//
//	g := pop.NewDomainGroup(pop.EpochPOP, 2, 8, nil) // 2 member domains, 8 slots
//	s, _ := pop.NewStore(g, nil)            // 8 shards over skiplists, 4 per member
//	h, _ := s.Acquire()                     // lease one group slot
//	s.Put(h, "user:42", []byte("payload"))
//	v, ok := s.Get(h, "user:42", nil)       // v is a private copy
//	s.GetBatch(h, keys, &batch)             // one protected op per shard
//	s.PutBatch(h, keys, vals, &batch)       // batched protected upsert
//	s.Scan(h, lo, hi, func(hk int64, v []byte) bool { ... })
//	s.Release(h)
//
// GetBatch and PutBatch answer a whole batch with one protected
// operation per shard group (sorted by shard and in-shard key), which
// measurably beats per-key ops — see BenchmarkStoreBatchGet and
// BenchmarkStorePutBatch in internal/store. Scan yields (hashed key,
// value copy) pairs over ordered backings.
//
// Serving pools resize live: Store.Acquire / Release lease group
// handles from the store's domain group, so workers can be scaled up
// and down against a loaded store (see examples/webcache). Each shard
// belongs to exactly one member domain; a handle leases into a member
// only when an op first touches one of its shards, keeping reclamation
// ping fan-out proportional to the member's reader population.
type Store = store.Store

// StoreOptions tunes a Store (shard count, backing structure, value
// size cap); see the field docs. The zero value — 8 shards over
// skiplists — serves scans, batches and single keys.
type StoreOptions = store.Config

// StoreStats is a snapshot of store counters, aggregated over shards.
type StoreStats = store.Stats

// StoreBatch carries one GetBatch's keys' results and its reusable
// scratch; allocate one per serving goroutine and pass it to every
// GetBatch call.
type StoreBatch = store.Batch

// StoreInlineMaxLen is the longest value (in bytes) the store encodes
// inline in the map word instead of the value arena. Inline puts
// allocate no arena slot and inline gets have no stale-read window.
const StoreInlineMaxLen = store.InlineMaxLen

// NewStore creates a sharded string-key KV store over domain group g.
// opts may be nil for the defaults (8 shards, skiplist backing —
// ordered, so Scan works). Shards are split evenly across g's members
// (g.Members() must not exceed the shard count). Shard structures
// register node types with the member domains, so create the store
// before the domains' type tables fill up.
func NewStore(g *DomainGroup, opts *StoreOptions) (*Store, error) {
	var cfg store.Config
	if opts != nil {
		cfg = *opts
	}
	return store.New(g, cfg)
}

// Queue is a concurrent FIFO of int64 values bound to a reclamation
// domain (the Michael-Scott queue — the original hazard-pointer showcase
// structure, included to demonstrate POP's drop-in property beyond sets).
type Queue interface {
	// Enqueue appends v.
	Enqueue(t *Thread, v int64)
	// Dequeue removes and returns the front value; ok=false when empty.
	Dequeue(t *Thread) (v int64, ok bool)
	// Len counts queued values (quiescent use only).
	Len(t *Thread) int
	// Outstanding reports live+retired node-pool occupancy.
	Outstanding() int64
}

// NewQueue creates a Michael-Scott lock-free FIFO queue.
func NewQueue(d *Domain) Queue { return msqueue.New(d) }
